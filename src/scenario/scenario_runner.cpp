#include "scenario/scenario_runner.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <optional>
#include <utility>

#include "broker/overlay.hpp"
#include "common/timer.hpp"
#include "selectivity/estimator.hpp"
#include "selectivity/stats.hpp"

namespace dbsp {

namespace {

/// Minimum rolling-window size worth retraining on; below this the drift
/// trigger stays pending until more traffic accumulated.
constexpr std::size_t kMinRetrainSample = 32;

/// Shared drift-maintenance state of both run modes: the trained
/// EventStats (estimators hold it by reference) plus the rolling window of
/// recent published events that drift retraining replays.
class RollingStats {
 public:
  RollingStats(const WorkloadDomain& domain, std::size_t training_events,
               std::size_t window_cap)
      : stats_(domain.schema()), window_cap_(window_cap) {
    auto training = domain.events(3);
    for (std::size_t i = 0; i < training_events; ++i) {
      stats_.observe(training->next());
    }
    stats_.finalize();
  }

  [[nodiscard]] const EventStats& stats() const { return stats_; }

  void observe(const Event& e) {
    window_.push_back(e);
    if (window_.size() > window_cap_) window_.pop_front();
  }

  /// Retrains in place when drift is pending and the window carries enough
  /// sample. Returns true when it did (the caller then rescores queues).
  bool maybe_retrain(bool drift_pending) {
    if (!drift_pending || window_.size() < kMinRetrainSample) return false;
    stats_.reset();
    for (const Event& e : window_) stats_.observe(e);
    stats_.finalize();
    return true;
  }

 private:
  EventStats stats_;
  std::deque<Event> window_;
  std::size_t window_cap_;
};

/// One churn tick, identical in both run modes: Poisson arrivals admitted
/// from `arrivals`, recency-biased departures released by index into the
/// arrival-ordered live population. Counters land in `pr`.
template <class AdmitFn, class LiveFn, class ReleaseFn>
void churn_tick(ChurnProcess& churn, SubscriptionSource& arrivals,
                ScenarioPhaseReport& pr, AdmitFn&& admit, LiveFn&& live,
                ReleaseFn&& release) {
  for (std::size_t a = churn.arrivals(); a > 0; --a) {
    admit(arrivals.next());
    ++pr.subscribes;
  }
  for (std::size_t d = churn.departures(); d > 0 && live() > 0; --d) {
    const std::size_t from_newest = churn.pick_victim(live());
    release(live() - 1 - from_newest);
    ++pr.unsubscribes;
  }
}

}  // namespace

ScenarioConfig ScenarioConfig::soak(std::size_t initial_subs,
                                    std::size_t events_per_phase) {
  ScenarioConfig c;
  c.initial_subscriptions = initial_subs;
  // Churn rates scale with the population so the soak stresses the same
  // relative turnover at every size.
  const double unit =
      std::max(0.25, static_cast<double>(initial_subs) / 1000.0);
  c.phases = {
      ScenarioPhase{"warmup", events_per_phase, ChurnConfig{0.05 * unit, 0.05 * unit, 3.0}, false},
      ScenarioPhase{"churn", events_per_phase, ChurnConfig{0.8 * unit, 0.8 * unit, 3.0}, false},
      ScenarioPhase{"flash_crowd", events_per_phase, ChurnConfig{2.5 * unit, 0.3 * unit, 2.0}, true},
      ScenarioPhase{"drain", events_per_phase, ChurnConfig{0.1 * unit, 2.0 * unit, 4.0}, false},
  };
  return c;
}

bool ScenarioReport::exact() const {
  for (const auto& p : phases) {
    if (p.oracle_mismatches != 0) return false;
  }
  return true;
}

std::size_t ScenarioReport::total_events() const {
  std::size_t n = 0;
  for (const auto& p : phases) n += p.events;
  return n;
}

std::size_t ScenarioReport::total_churn_ops() const {
  std::size_t n = 0;
  for (const auto& p : phases) n += p.subscribes + p.unsubscribes;
  return n;
}

std::size_t ScenarioReport::total_mismatches() const {
  std::size_t n = 0;
  for (const auto& p : phases) n += p.oracle_mismatches;
  return n;
}

double ScenarioReport::total_match_seconds() const {
  double s = 0.0;
  for (const auto& p : phases) s += p.match_seconds;
  return s;
}

double ScenarioReport::total_wall_seconds() const {
  double s = 0.0;
  for (const auto& p : phases) s += p.wall_seconds;
  return s;
}

ScenarioRunner::ScenarioRunner(const WorkloadDomain& domain, ScenarioConfig config)
    : domain_(&domain), config_(std::move(config)) {}

ScenarioReport ScenarioRunner::run() {
  return config_.brokers > 0 ? run_overlay() : run_centralized();
}

ScenarioReport ScenarioRunner::run_centralized() {
  RollingStats rolling(*domain_, config_.training_events, config_.stats_window);
  const SelectivityEstimator estimator(rolling.stats());

  ShardedEngineOptions engine_options;
  engine_options.shards = config_.shards == 0 ? 1 : config_.shards;
  ShardedEngine engine(domain_->schema(), engine_options);

  PruneEngineConfig prune_config;
  prune_config.dimension = config_.dimension;
  std::optional<ShardedPruningSet> pruning;
  if (config_.pruning) pruning.emplace(engine, estimator, prune_config);

  // Live population in arrival order (ids are assigned monotonically, so
  // the order is also ascending-id order — what engine.match() returns).
  std::vector<std::unique_ptr<Subscription>> live;
  live.reserve(config_.initial_subscriptions * 2);
  std::uint32_t next_id = 0;

  auto subs_source = domain_->subscriptions(1);
  auto flash_source = domain_->flash_subscriptions(4);
  auto admit = [&](std::unique_ptr<Node> tree) {
    auto sub = std::make_unique<Subscription>(SubscriptionId(next_id++), std::move(tree));
    engine.add(*sub);
    if (pruning) pruning->add(*sub);
    live.push_back(std::move(sub));
  };
  auto release = [&](std::size_t idx) {
    const SubscriptionId id = live[idx]->id();
    if (pruning) pruning->remove(id);
    engine.remove(id);
    live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
  };
  for (std::size_t i = 0; i < config_.initial_subscriptions; ++i) {
    admit(subs_source->next());
  }
  if (pruning) {
    pruning->prune_to_fraction(config_.prune_fraction);
    // Armed only now: the initial bulk load is not churn.
    pruning->set_drift_threshold(config_.drift_threshold);
  }

  auto events = domain_->events(2);

  ScenarioReport report;
  report.domain = std::string(domain_->name());
  report.mode = "centralized";
  report.shards = engine.shard_count();

  std::vector<SubscriptionId> matched;
  std::vector<SubscriptionId> expected;
  std::size_t phase_index = 0;
  for (const ScenarioPhase& phase : config_.phases) {
    ScenarioPhaseReport pr;
    pr.name = phase.name;
    pr.events = phase.events;
    ChurnProcess churn(phase.churn, config_.seed + 97 * ++phase_index);
    SubscriptionSource& arrivals =
        phase.flash_crowd ? *flash_source : *subs_source;

    Stopwatch wall;
    Stopwatch match_watch;
    wall.start();
    for (std::size_t ev = 0; ev < phase.events; ++ev) {
      churn_tick(churn, arrivals, pr, admit, [&] { return live.size(); }, release);
      if (pruning) {
        pr.prunings += pruning->prune_to_fraction(config_.prune_fraction);
        if (rolling.maybe_retrain(pruning->drift_pending())) {
          pruning->rescore_all();
          ++pr.drift_retrains;
        }
      }

      const Event event = events->next();
      rolling.observe(event);

      matched.clear();
      match_watch.start();
      engine.match(event, matched);
      match_watch.stop();
      pr.matches += matched.size();

      if (config_.check_every != 0 && ev % config_.check_every == 0) {
        ++pr.oracle_checked;
        expected.clear();
        for (const auto& s : live) {
          if (s->matches(event)) expected.push_back(s->id());
        }
        if (expected != matched) ++pr.oracle_mismatches;
      }
    }
    wall.stop();
    pr.live_subscriptions = live.size();
    pr.associations = engine.association_count();
    pr.match_seconds = match_watch.seconds();
    pr.wall_seconds = wall.seconds();
    report.phases.push_back(std::move(pr));
  }
  if (pruning) report.maintenance = pruning->maintenance();
  return report;
}

ScenarioReport ScenarioRunner::run_overlay() {
  const std::size_t brokers = config_.brokers;
  RollingStats rolling(*domain_, config_.training_events, config_.stats_window);
  const SelectivityEstimator estimator(rolling.stats());

  ShardedEngineOptions engine_options;
  engine_options.shards = config_.shards == 0 ? 1 : config_.shards;
  Overlay overlay(domain_->schema(), brokers, Overlay::line(brokers), {},
                  engine_options);
  overlay.set_record_notifications(true);

  // Live population (arrival order) with each subscription's home broker
  // and an unpruned oracle copy of its tree. Local entries are never
  // pruned, so delivery must match the oracle exactly (paper §2.2).
  struct LiveSub {
    SubscriptionId id;
    BrokerId home;
    std::unique_ptr<Node> oracle_tree;
  };
  std::vector<LiveSub> live;
  std::uint32_t next_id = 0;

  auto subs_source = domain_->subscriptions(1);
  auto flash_source = domain_->flash_subscriptions(4);
  auto admit = [&](std::unique_ptr<Node> tree) {
    const SubscriptionId id(next_id);
    const BrokerId home(static_cast<BrokerId::value_type>(next_id % brokers));
    ++next_id;
    std::unique_ptr<Node> oracle = tree->clone();
    overlay.subscribe(home, ClientId(id.value()), id, std::move(tree));
    live.push_back(LiveSub{id, home, std::move(oracle)});
  };
  auto release = [&](std::size_t idx) {
    overlay.unsubscribe(live[idx].home, live[idx].id);
    live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
  };
  for (std::size_t i = 0; i < config_.initial_subscriptions; ++i) {
    admit(subs_source->next());
  }

  // One pruning set per broker over its remote entries, attached to the
  // broker so churn stays in sync automatically.
  PruneEngineConfig prune_config;
  prune_config.dimension = config_.dimension;
  std::vector<std::unique_ptr<ShardedPruningSet>> sets;
  if (config_.pruning) {
    for (std::size_t b = 0; b < brokers; ++b) {
      Broker& broker = overlay.broker(BrokerId(static_cast<BrokerId::value_type>(b)));
      sets.push_back(std::make_unique<ShardedPruningSet>(
          broker.engine(), estimator, prune_config, broker.remote_subscriptions()));
      sets.back()->prune_to_fraction(config_.prune_fraction);
      sets.back()->set_drift_threshold(config_.drift_threshold);
      broker.set_pruning(sets.back().get());
    }
  }

  auto events = domain_->events(2);

  ScenarioReport report;
  report.domain = std::string(domain_->name());
  report.mode = "overlay";
  report.shards = engine_options.shards;

  std::size_t phase_index = 0;
  for (const ScenarioPhase& phase : config_.phases) {
    ScenarioPhaseReport pr;
    pr.name = phase.name;
    pr.events = phase.events;
    ChurnProcess churn(phase.churn, config_.seed + 97 * ++phase_index);
    SubscriptionSource& arrivals =
        phase.flash_crowd ? *flash_source : *subs_source;

    // seq -> expected sorted subscriber ids, computed at publish time from
    // the oracle trees of the then-live population.
    std::map<std::uint64_t, std::vector<SubscriptionId>> expected;

    Stopwatch wall;
    wall.start();
    for (std::size_t ev = 0; ev < phase.events; ++ev) {
      churn_tick(churn, arrivals, pr, admit, [&] { return live.size(); }, release);
      if (!sets.empty()) {
        bool drift = false;
        for (const auto& set : sets) {
          pr.prunings += set->prune_to_fraction(config_.prune_fraction);
          drift = drift || set->drift_pending();
        }
        if (rolling.maybe_retrain(drift)) {
          for (const auto& set : sets) set->rescore_all();
          ++pr.drift_retrains;
        }
      }

      const Event event = events->next();
      rolling.observe(event);

      const BrokerId at(static_cast<BrokerId::value_type>(ev % brokers));
      const std::uint64_t seq = overlay.publish(at, event);
      auto& exp = expected[seq];
      for (const LiveSub& s : live) {
        if (s.oracle_tree->evaluate_event(event)) exp.push_back(s.id);
      }
    }
    wall.stop();

    // Phase-end verification: the union of the brokers' notification logs
    // must equal the oracle expectation for every published event.
    std::map<std::uint64_t, std::vector<SubscriptionId>> actual;
    for (const auto& [seq, ids] : expected) actual[seq];  // seed empty rows
    std::uint64_t notifications = 0;
    for (std::size_t b = 0; b < brokers; ++b) {
      const Broker& broker =
          overlay.broker(BrokerId(static_cast<BrokerId::value_type>(b)));
      notifications += broker.notifications_delivered();
      for (const auto& [sid, seq] : broker.notification_log()) {
        actual[seq].push_back(sid);
      }
    }
    pr.oracle_checked = expected.size();
    for (auto& [seq, ids] : actual) {
      std::sort(ids.begin(), ids.end());
      const auto it = expected.find(seq);
      if (it == expected.end() || it->second != ids) ++pr.oracle_mismatches;
    }

    pr.matches = notifications;
    pr.live_subscriptions = live.size();
    std::size_t assocs = 0;
    double filter_seconds = 0.0;
    for (std::size_t b = 0; b < brokers; ++b) {
      const Broker& broker =
          overlay.broker(BrokerId(static_cast<BrokerId::value_type>(b)));
      assocs += broker.engine().association_count();
      filter_seconds += broker.filter_seconds();
    }
    pr.associations = assocs;
    pr.match_seconds = filter_seconds;
    pr.wall_seconds = wall.seconds();
    report.phases.push_back(std::move(pr));
    overlay.reset_metrics();  // clears logs and filter timers for the next phase
  }

  for (const auto& set : sets) {
    const auto m = set->maintenance();
    report.maintenance.admissions += m.admissions;
    report.maintenance.releases += m.releases;
    report.maintenance.queue_compactions += m.queue_compactions;
    report.maintenance.full_rescores += m.full_rescores;
  }
  // `sets` dies before the overlay: detach so no broker keeps a dangling
  // pruning pointer.
  for (std::size_t b = 0; b < brokers; ++b) {
    overlay.broker(BrokerId(static_cast<BrokerId::value_type>(b))).set_pruning(nullptr);
  }
  return report;
}

}  // namespace dbsp
