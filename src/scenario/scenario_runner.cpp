#include "scenario/scenario_runner.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "net/client.hpp"
#include "net/server.hpp"

namespace dbsp {

namespace {

/// Minimum rolling-window size worth retraining on; below this the drift
/// trigger stays pending until more traffic accumulated.
constexpr std::size_t kMinRetrainSample = 32;

/// End-of-run observability capture: the facade's full registry scrape and
/// what producing it cost — the per-scrape price a monitoring agent pays.
void capture_metrics(PubSub& pubsub, ScenarioReport& report) {
  Stopwatch scrape;
  scrape.start();
  report.metrics_json = pubsub.metrics_json();
  scrape.stop();
  report.scrape_cost_us = scrape.seconds() * 1e6;
}

/// Rolling window of the most recent published events — the retraining
/// sample of the drift-maintenance path. Ring storage; EventStats training
/// is order-independent, so the rotated order is irrelevant.
class RollingWindow {
 public:
  explicit RollingWindow(std::size_t cap) : cap_(cap == 0 ? 1 : cap) {}

  void observe(const Event& e) {
    if (events_.size() < cap_) {
      events_.push_back(e);
    } else {
      events_[next_] = e;
      next_ = (next_ + 1) % cap_;
    }
  }

  [[nodiscard]] bool ready() const { return events_.size() >= kMinRetrainSample; }
  [[nodiscard]] const std::vector<Event>& events() const { return events_; }

 private:
  std::vector<Event> events_;
  std::size_t cap_;
  std::size_t next_ = 0;
};

/// Overlay-mode drift state: the trained EventStats (broker-side
/// estimators hold it by reference) plus the rolling retrain window. The
/// centralized mode does not need this — the PubSub facade owns its
/// statistics and train() replays the window into them.
class RollingStats {
 public:
  RollingStats(const WorkloadDomain& domain, std::size_t training_events,
               std::size_t window_cap)
      : stats_(domain.schema()), window_(window_cap) {
    auto training = domain.events(3);
    for (std::size_t i = 0; i < training_events; ++i) {
      stats_.observe(training->next());
    }
    stats_.finalize();
  }

  [[nodiscard]] const EventStats& stats() const { return stats_; }

  void observe(const Event& e) { window_.observe(e); }

  /// Retrains in place when drift is pending and the window carries enough
  /// sample. Returns true when it did (the caller then rescores queues).
  bool maybe_retrain(bool drift_pending) {
    if (!drift_pending || !window_.ready()) return false;
    stats_.reset();
    for (const Event& e : window_.events()) stats_.observe(e);
    stats_.finalize();
    return true;
  }

 private:
  EventStats stats_;
  RollingWindow window_;
};

/// One churn tick, identical in both run modes: Poisson arrivals admitted
/// from `arrivals`, recency-biased departures released by index into the
/// arrival-ordered live population. Counters land in `pr`.
template <class AdmitFn, class LiveFn, class ReleaseFn>
void churn_tick(ChurnProcess& churn, SubscriptionSource& arrivals,
                ScenarioPhaseReport& pr, AdmitFn&& admit, LiveFn&& live,
                ReleaseFn&& release) {
  for (std::size_t a = churn.arrivals(); a > 0; --a) {
    admit(arrivals.next());
    ++pr.subscribes;
  }
  for (std::size_t d = churn.departures(); d > 0 && live() > 0; --d) {
    const std::size_t from_newest = churn.pick_victim(live());
    release(live() - 1 - from_newest);
    ++pr.unsubscribes;
  }
}

}  // namespace

ScenarioConfig ScenarioConfig::soak(std::size_t initial_subs,
                                    std::size_t events_per_phase) {
  ScenarioConfig c;
  c.initial_subscriptions = initial_subs;
  // Churn rates scale with the population so the soak stresses the same
  // relative turnover at every size.
  const double unit =
      std::max(0.25, static_cast<double>(initial_subs) / 1000.0);
  c.phases = {
      ScenarioPhase{"warmup", events_per_phase, ChurnConfig{0.05 * unit, 0.05 * unit, 3.0}, false},
      ScenarioPhase{"churn", events_per_phase, ChurnConfig{0.8 * unit, 0.8 * unit, 3.0}, false},
      ScenarioPhase{"flash_crowd", events_per_phase, ChurnConfig{2.5 * unit, 0.3 * unit, 2.0}, true},
      ScenarioPhase{"drain", events_per_phase, ChurnConfig{0.1 * unit, 2.0 * unit, 4.0}, false},
  };
  return c;
}

bool ScenarioReport::exact() const {
  for (const auto& p : phases) {
    if (p.oracle_mismatches != 0) return false;
  }
  return true;
}

std::size_t ScenarioReport::total_events() const {
  std::size_t n = 0;
  for (const auto& p : phases) n += p.events;
  return n;
}

std::size_t ScenarioReport::total_churn_ops() const {
  std::size_t n = 0;
  for (const auto& p : phases) n += p.subscribes + p.unsubscribes;
  return n;
}

std::size_t ScenarioReport::total_mismatches() const {
  std::size_t n = 0;
  for (const auto& p : phases) n += p.oracle_mismatches;
  return n;
}

double ScenarioReport::total_match_seconds() const {
  double s = 0.0;
  for (const auto& p : phases) s += p.match_seconds;
  return s;
}

double ScenarioReport::total_wall_seconds() const {
  double s = 0.0;
  for (const auto& p : phases) s += p.wall_seconds;
  return s;
}

std::size_t ScenarioReport::total_recoveries() const {
  std::size_t n = 0;
  for (const auto& p : phases) n += p.recoveries;
  return n;
}

double ScenarioReport::total_recovery_seconds() const {
  double s = 0.0;
  for (const auto& p : phases) s += p.recovery_seconds;
  return s;
}

std::uint64_t ScenarioReport::total_replayed_wal_records() const {
  std::uint64_t n = 0;
  for (const auto& p : phases) n += p.replayed_wal_records;
  return n;
}

ScenarioRunner::ScenarioRunner(const WorkloadDomain& domain, ScenarioConfig config)
    : domain_(&domain), config_(std::move(config)) {}

ScenarioReport ScenarioRunner::run() {
  if (!config_.store_directory.empty() && config_.brokers > 0) {
    throw std::logic_error("scenario: store-backed runs are centralized only");
  }
  if (!config_.kill_recover_phases.empty() && config_.store_directory.empty()) {
    throw std::logic_error("scenario: kill_recover_phases requires store_directory");
  }
  if (config_.transport == ScenarioTransport::kSockets) {
    if (config_.brokers > 0) {
      throw std::logic_error("scenario: sockets transport is centralized only");
    }
    if (config_.pruning) {
      throw std::logic_error(
          "scenario: sockets transport requires pruning off (the oracle holds "
          "unpruned local tree clones)");
    }
    return run_sockets();
  }
  return config_.brokers > 0 ? run_overlay() : run_centralized();
}

ScenarioReport ScenarioRunner::run_centralized() {
  // The system under soak is the public facade: schema, sharded engine and
  // pruning queues all live inside one PubSub; churn goes through RAII
  // handles whose destruction releases engine and pruning state. With a
  // store directory configured, the PubSub opens durably and the
  // kill-and-recover phases crash and reopen it mid-churn.
  PubSubOptions options;
  options.engine.shards = config_.shards == 0 ? 1 : config_.shards;
  options.pruning = config_.pruning;
  options.prune.dimension = config_.dimension;
  options.aggregation = config_.aggregation;
  if (config_.aggregation) {
    options.agg = agg::AggregatorOptions::from_env();
    // Soak populations are small enough that the engine's cost-based
    // fallback would route around the probe; disable it so the scenario
    // actually stresses the aggregated path it is here to verify.
    options.engine.agg_fallback_pct = 0;
  }
  const bool durable = !config_.store_directory.empty();
  const auto make_pubsub = [&]() -> PubSub {
    if (!durable) return PubSub(domain_->schema(), options);
    StoreOptions store;
    store.directory = config_.store_directory;
    store.schema = domain_->schema();
    store.snapshot_every = config_.store_snapshot_every;
    auto opened = PubSub::open(std::move(store), options);
    if (!opened.ok()) throw std::logic_error(opened.status().to_string());
    return std::move(opened).value();
  };
  std::optional<PubSub> pubsub(make_pubsub());

  RollingWindow window(config_.stats_window);
  if (config_.pruning || config_.aggregation) {
    auto training = domain_->events(3);
    std::vector<Event> sample;
    sample.reserve(config_.training_events);
    for (std::size_t i = 0; i < config_.training_events; ++i) {
      sample.push_back(training->next());
    }
    const Status trained = pubsub->train(sample);
    if (!trained.ok()) throw std::logic_error(trained.to_string());
  }

  // Matched ids of the current publish, filled by the shared callback in
  // dispatch (= ascending id) order.
  std::vector<SubscriptionId> matched;
  const auto on_match = [&matched](const Notification& n) {
    matched.push_back(n.subscription);
  };

  // Live population in arrival order (the facade assigns ids
  // monotonically, so the order is also ascending-id order — what the
  // callbacks deliver).
  std::vector<SubscriptionHandle> live;
  live.reserve(config_.initial_subscriptions * 2);

  auto subs_source = domain_->subscriptions(1);
  auto flash_source = domain_->flash_subscriptions(4);
  auto admit = [&](std::unique_ptr<Node> tree) {
    auto subscribed = pubsub->subscribe(std::move(tree), on_match);
    if (!subscribed.ok()) throw std::logic_error(subscribed.status().to_string());
    live.push_back(std::move(subscribed).value());
  };
  auto release = [&](std::size_t idx) {
    // Handle destruction unsubscribes and releases pruning state.
    live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
  };
  for (std::size_t i = 0; i < config_.initial_subscriptions; ++i) {
    admit(subs_source->next());
  }
  if (config_.pruning) {
    (void)pubsub->prune_to_fraction(config_.prune_fraction).value();
  }
  if (config_.pruning || config_.aggregation) {
    // Armed only now: the initial bulk load is not churn.
    pubsub->set_drift_threshold(config_.drift_threshold).expect_ok();
  }

  auto events = domain_->events(2);

  ScenarioReport report;
  report.domain = std::string(domain_->name());
  report.mode = "centralized";
  report.shards = pubsub->shard_count();

  std::vector<SubscriptionId> expected;
  std::size_t phase_index = 0;
  for (const ScenarioPhase& phase : config_.phases) {
    ScenarioPhaseReport pr;
    pr.name = phase.name;
    pr.events = phase.events;
    ChurnProcess churn(phase.churn, config_.seed + 97 * ++phase_index);
    SubscriptionSource& arrivals =
        phase.flash_crowd ? *flash_source : *subs_source;

    const bool kill_here =
        std::find(config_.kill_recover_phases.begin(),
                  config_.kill_recover_phases.end(),
                  phase_index - 1) != config_.kill_recover_phases.end();

    Stopwatch wall;
    Stopwatch match_watch;
    wall.start();
    for (std::size_t ev = 0; ev < phase.events; ++ev) {
      if (durable && kill_here && ev == phase.events / 2) {
        // Simulated crash mid-churn: destroy the PubSub with no checkpoint
        // and no clean shutdown — every acknowledged operation is already
        // in the WAL, and the handles in `live` turn inert (their core is
        // gone). Then reopen from the store and re-adopt every recovered
        // registration in ascending-id (= arrival) order, so the
        // recency-biased churn and the oracle below keep their semantics.
        pubsub.reset();
        Stopwatch recovery;
        recovery.start();
        pubsub.emplace(make_pubsub());
        std::vector<SubscriptionHandle> adopted;
        adopted.reserve(live.size());
        for (const SubscriptionId id : pubsub->subscription_ids()) {
          auto handle = pubsub->adopt(id, on_match);
          if (!handle.ok()) throw std::logic_error(handle.status().to_string());
          adopted.push_back(std::move(handle).value());
        }
        live = std::move(adopted);
        if (config_.pruning || config_.aggregation) {
          // Runtime-only knobs are re-armed, not recovered.
          pubsub->set_drift_threshold(config_.drift_threshold).expect_ok();
        }
        recovery.stop();
        ++pr.recoveries;
        pr.recovery_seconds += recovery.seconds();
        pr.recovered_subscriptions = live.size();
        pr.replayed_wal_records += pubsub->store_stats().replayed_records;
      }
      churn_tick(churn, arrivals, pr, admit, [&] { return live.size(); }, release);
      if (config_.pruning) {
        pr.prunings += pubsub->prune_to_fraction(config_.prune_fraction).value();
      }
      if (config_.pruning || config_.aggregation) {
        if (pubsub->drift_pending() && window.ready()) {
          pubsub->train(window.events()).expect_ok();
          pubsub->rescore_all().expect_ok();
          ++pr.drift_retrains;
        }
      }

      const Event event = events->next();
      window.observe(event);

      matched.clear();
      match_watch.start();
      pr.matches += pubsub->publish(event);
      match_watch.stop();

      if (config_.check_every != 0 && ev % config_.check_every == 0) {
        ++pr.oracle_checked;
        expected.clear();
        for (const auto& handle : live) {
          if (pubsub->matches(handle.id(), event).value()) {
            expected.push_back(handle.id());
          }
        }
        if (expected != matched) ++pr.oracle_mismatches;
      }
    }
    wall.stop();
    pr.live_subscriptions = live.size();
    pr.associations = pubsub->association_count();
    pr.match_seconds = match_watch.seconds();
    pr.wall_seconds = wall.seconds();
    report.phases.push_back(std::move(pr));
  }
  report.maintenance = pubsub->pruning_stats().maintenance;
  capture_metrics(*pubsub, report);
  return report;
}

ScenarioReport ScenarioRunner::run_sockets() {
  // The system under soak is a real broker daemon core: a NetServer on a
  // loopback ephemeral port fronting the PubSub, driven by two DbspClients
  // — one holding every subscription (and receiving all notifications),
  // one publishing. Every operation crosses the dbspd wire protocol.
  // Exactness: publish replies carry the matched count n; the runner reads
  // exactly n notification frames and compares the delivered ids against
  // unpruned local oracle clones of the live trees.
  PubSubOptions options;
  options.engine.shards = config_.shards == 0 ? 1 : config_.shards;
  if (config_.tracing) options.trace = config_.trace;
  const bool durable = !config_.store_directory.empty();
  const auto make_pubsub = [&]() -> PubSub {
    if (!durable) return PubSub(domain_->schema(), options);
    StoreOptions store;
    store.directory = config_.store_directory;
    store.schema = domain_->schema();
    store.snapshot_every = config_.store_snapshot_every;
    auto opened = PubSub::open(std::move(store), options);
    if (!opened.ok()) throw std::logic_error(opened.status().to_string());
    return std::move(opened).value();
  };

  net::NetServerOptions server_options;
  server_options.port = 0;  // ephemeral; each (re)start binds a fresh port
  const auto start_server = [&]() -> std::unique_ptr<net::NetServer> {
    auto server = net::NetServer::start(make_pubsub(), server_options);
    if (!server.ok()) throw std::logic_error(server.status().to_string());
    return std::move(server).value();
  };
  std::unique_ptr<net::NetServer> server = start_server();

  const auto connect = [&]() -> net::DbspClient {
    auto client = net::DbspClient::connect("127.0.0.1", server->port());
    if (!client.ok()) throw std::logic_error(client.status().to_string());
    return std::move(client).value();
  };
  // Tracing: the publisher owns a client-side flight recorder (so every
  // publish carries an active context whose sampled flag crosses the wire)
  // and the subscriber records publish-to-receipt e2e latency.
  std::shared_ptr<obs::FlightRecorder> client_recorder;
  std::shared_ptr<obs::MetricsRegistry> client_registry;
  if (config_.tracing) {
    client_recorder = std::make_shared<obs::FlightRecorder>(config_.trace);
    client_registry = std::make_shared<obs::MetricsRegistry>();
  }
  const auto arm_clients = [&](net::DbspClient& sub, net::DbspClient& pub) {
    if (!config_.tracing) return;
    pub.attach_trace_recorder(client_recorder);
    sub.attach_metrics(client_registry);
  };

  std::optional<net::DbspClient> subscriber(connect());
  std::optional<net::DbspClient> publisher(connect());
  arm_clients(*subscriber, *publisher);

  // Live population in arrival (= ascending server-assigned id) order,
  // each with an unpruned oracle clone of its tree.
  struct LiveSub {
    std::uint64_t id;
    std::unique_ptr<Node> oracle_tree;
  };
  std::vector<LiveSub> live;
  live.reserve(config_.initial_subscriptions * 2);

  auto subs_source = domain_->subscriptions(1);
  auto flash_source = domain_->flash_subscriptions(4);
  auto admit = [&](std::unique_ptr<Node> tree) {
    auto id = subscriber->subscribe(*tree);
    if (!id.ok()) throw std::logic_error(id.status().to_string());
    live.push_back(LiveSub{id.value(), std::move(tree)});
  };
  auto release = [&](std::size_t idx) {
    const Status released = subscriber->unsubscribe(live[idx].id);
    if (!released.ok()) throw std::logic_error(released.to_string());
    live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
  };
  for (std::size_t i = 0; i < config_.initial_subscriptions; ++i) {
    admit(subs_source->next());
  }

  auto events = domain_->events(2);

  ScenarioReport report;
  report.domain = std::string(domain_->name());
  report.mode = "sockets";
  report.shards = options.engine.shards;

  std::vector<std::uint64_t> expected;
  std::vector<std::uint64_t> delivered;
  std::size_t phase_index = 0;
  for (const ScenarioPhase& phase : config_.phases) {
    ScenarioPhaseReport pr;
    pr.name = phase.name;
    pr.events = phase.events;
    ChurnProcess churn(phase.churn, config_.seed + 97 * ++phase_index);
    SubscriptionSource& arrivals =
        phase.flash_crowd ? *flash_source : *subs_source;

    const bool kill_here =
        std::find(config_.kill_recover_phases.begin(),
                  config_.kill_recover_phases.end(),
                  phase_index - 1) != config_.kill_recover_phases.end();

    Stopwatch wall;
    Stopwatch match_watch;
    wall.start();
    for (std::size_t ev = 0; ev < phase.events; ++ev) {
      if (durable && kill_here && ev == phase.events / 2) {
        // Daemon kill: no drain, no checkpoint, no client goodbyes — the
        // crash path. Every acknowledged operation is already in the WAL,
        // so the restarted daemon recovers warm and the clients reconnect
        // and re-adopt their subscription ids.
        server->stop(/*drain=*/false);
        subscriber.reset();
        publisher.reset();
        Stopwatch recovery;
        recovery.start();
        server = start_server();
        subscriber.emplace(connect());
        publisher.emplace(connect());
        arm_clients(*subscriber, *publisher);
        for (const LiveSub& sub : live) {
          auto adopted = subscriber->adopt(sub.id);
          if (!adopted.ok()) throw std::logic_error(adopted.status().to_string());
        }
        recovery.stop();
        ++pr.recoveries;
        pr.recovery_seconds += recovery.seconds();
        pr.recovered_subscriptions = live.size();
        if (PubSub* pubsub = server->pubsub()) {
          pr.replayed_wal_records += pubsub->store_stats().replayed_records;
        }
      }
      churn_tick(churn, arrivals, pr, admit, [&] { return live.size(); }, release);

      const Event event = events->next();
      // Tracing: mint the context here (rather than inside the client) so
      // the runner can count head-sampled publishes for the coverage report.
      obs::TraceContext trace_ctx;
      if (config_.tracing) {
        trace_ctx = obs::make_trace_context(client_recorder->should_sample());
        ++report.traced_publishes;
        if (trace_ctx.sampled) ++report.sampled_publishes;
      }
      match_watch.start();
      auto matched = publisher->publish(event, trace_ctx);
      match_watch.stop();
      if (!matched.ok()) throw std::logic_error(matched.status().to_string());
      pr.matches += matched.value();

      // Drain exactly the notifications this publish produced (they are
      // the only in-flight pushes: this thread is the only publisher).
      delivered.clear();
      for (std::uint64_t k = 0; k < matched.value(); ++k) {
        auto n = subscriber->next_notification(/*timeout_ms=*/10000);
        if (!n.ok()) throw std::logic_error(n.status().to_string());
        if (!n.value().has_value()) break;  // timed out — a real delivery gap
        delivered.push_back(n.value()->subscription);
      }

      if (config_.check_every != 0 && ev % config_.check_every == 0) {
        ++pr.oracle_checked;
        expected.clear();
        for (const LiveSub& sub : live) {
          if (sub.oracle_tree->evaluate_event(event)) expected.push_back(sub.id);
        }
        std::sort(delivered.begin(), delivered.end());
        if (expected != delivered) ++pr.oracle_mismatches;
      } else if (delivered.size() != matched.value()) {
        ++pr.oracle_mismatches;  // lost notifications count even unchecked
      }
    }
    wall.stop();
    pr.live_subscriptions = live.size();
    if (PubSub* pubsub = server->pubsub()) {
      pr.associations = pubsub->association_count();
    }
    pr.match_seconds = match_watch.seconds();
    pr.wall_seconds = wall.seconds();
    report.phases.push_back(std::move(pr));
  }

  // Tracing coverage: join the client-side ring against the server's
  // through the traces wire verb while the clients are still connected.
  if (config_.tracing) {
    const std::vector<obs::Trace> client_snapshot = client_recorder->snapshot();
    report.client_traces = client_snapshot.size();
    auto server_traces = publisher->traces();
    if (server_traces.ok()) {
      report.server_traces = server_traces.value().traces.size();
      std::unordered_set<std::uint64_t> server_ids;
      for (const obs::Trace& t : server_traces.value().traces) {
        server_ids.insert(t.trace_id);
      }
      for (const obs::Trace& t : client_snapshot) {
        if (server_ids.count(t.trace_id) != 0) ++report.joined_traces;
      }
    }
    const obs::MetricsSnapshot client_metrics = client_registry->snapshot();
    if (const obs::MetricSnapshot* h =
            client_metrics.find("dbsp_e2e_latency_us")) {
      report.e2e_latency_samples = h->histogram.count;
    }
  }

  // Graceful end of the soak: clients say goodbye first (their clean
  // disconnect releases the subscriptions), then the daemon drains.
  subscriber.reset();
  publisher.reset();
  if (PubSub* pubsub = server->pubsub()) capture_metrics(*pubsub, report);
  server->stop(/*drain=*/true);
  return report;
}

ScenarioReport ScenarioRunner::run_overlay() {
  const std::size_t brokers = config_.brokers;
  // The estimator must outlive the overlay: brokers with pruning enabled
  // hold it by reference.
  RollingStats rolling(*domain_, config_.training_events, config_.stats_window);
  const SelectivityEstimator estimator(rolling.stats());

  ShardedEngineOptions engine_options;
  engine_options.shards = config_.shards == 0 ? 1 : config_.shards;
  Overlay overlay(domain_->schema(), brokers, Overlay::line(brokers), {},
                  engine_options);
  overlay.set_record_notifications(true);

  const auto broker_at = [&overlay](std::size_t b) -> Broker& {
    return overlay.broker(BrokerId(static_cast<BrokerId::value_type>(b)));
  };

  // Live population (arrival order) with each subscription's home broker
  // and an unpruned oracle copy of its tree. Local entries are never
  // pruned, so delivery must match the oracle exactly (paper §2.2).
  struct LiveSub {
    SubscriptionId id;
    BrokerId home;
    std::unique_ptr<Node> oracle_tree;
  };
  std::vector<LiveSub> live;
  std::uint32_t next_id = 0;

  auto subs_source = domain_->subscriptions(1);
  auto flash_source = domain_->flash_subscriptions(4);
  auto admit = [&](std::unique_ptr<Node> tree) {
    const SubscriptionId id(next_id);
    const BrokerId home(static_cast<BrokerId::value_type>(next_id % brokers));
    ++next_id;
    std::unique_ptr<Node> oracle = tree->clone();
    overlay.subscribe(home, ClientId(id.value()), id, std::move(tree));
    live.push_back(LiveSub{id, home, std::move(oracle)});
  };
  auto release = [&](std::size_t idx) {
    overlay.unsubscribe(live[idx].home, live[idx].id);
    live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
  };
  for (std::size_t i = 0; i < config_.initial_subscriptions; ++i) {
    admit(subs_source->next());
  }

  // Broker-owned pruning over each broker's remote entries; churn stays in
  // sync automatically for as long as pruning is enabled.
  PruneEngineConfig prune_config;
  prune_config.dimension = config_.dimension;
  if (config_.pruning) {
    for (std::size_t b = 0; b < brokers; ++b) {
      ShardedPruningSet& set = broker_at(b).enable_pruning(estimator, prune_config);
      set.prune_to_fraction(config_.prune_fraction);
      set.set_drift_threshold(config_.drift_threshold);
    }
  }

  auto events = domain_->events(2);

  ScenarioReport report;
  report.domain = std::string(domain_->name());
  report.mode = "overlay";
  report.shards = engine_options.shards;

  std::size_t phase_index = 0;
  for (const ScenarioPhase& phase : config_.phases) {
    ScenarioPhaseReport pr;
    pr.name = phase.name;
    pr.events = phase.events;
    ChurnProcess churn(phase.churn, config_.seed + 97 * ++phase_index);
    SubscriptionSource& arrivals =
        phase.flash_crowd ? *flash_source : *subs_source;

    // seq -> expected sorted subscriber ids, computed at publish time from
    // the oracle trees of the then-live population.
    std::map<std::uint64_t, std::vector<SubscriptionId>> expected;

    Stopwatch wall;
    wall.start();
    for (std::size_t ev = 0; ev < phase.events; ++ev) {
      churn_tick(churn, arrivals, pr, admit, [&] { return live.size(); }, release);
      if (config_.pruning) {
        bool drift = false;
        for (std::size_t b = 0; b < brokers; ++b) {
          ShardedPruningSet* set = broker_at(b).pruning();
          pr.prunings += set->prune_to_fraction(config_.prune_fraction);
          drift = drift || set->drift_pending();
        }
        if (rolling.maybe_retrain(drift)) {
          for (std::size_t b = 0; b < brokers; ++b) {
            broker_at(b).pruning()->rescore_all();
          }
          ++pr.drift_retrains;
        }
      }

      const Event event = events->next();
      rolling.observe(event);

      const BrokerId at(static_cast<BrokerId::value_type>(ev % brokers));
      const std::uint64_t seq = overlay.publish(at, event);
      auto& exp = expected[seq];
      for (const LiveSub& s : live) {
        if (s.oracle_tree->evaluate_event(event)) exp.push_back(s.id);
      }
    }
    wall.stop();

    // Phase-end verification: the union of the brokers' notification logs
    // must equal the oracle expectation for every published event.
    std::map<std::uint64_t, std::vector<SubscriptionId>> actual;
    for (const auto& [seq, ids] : expected) actual[seq];  // seed empty rows
    std::uint64_t notifications = 0;
    for (std::size_t b = 0; b < brokers; ++b) {
      const Broker& broker = broker_at(b);
      notifications += broker.notifications_delivered();
      for (const auto& [sid, seq] : broker.notification_log()) {
        actual[seq].push_back(sid);
      }
    }
    pr.oracle_checked = expected.size();
    for (auto& [seq, ids] : actual) {
      std::sort(ids.begin(), ids.end());
      const auto it = expected.find(seq);
      if (it == expected.end() || it->second != ids) ++pr.oracle_mismatches;
    }

    pr.matches = notifications;
    pr.live_subscriptions = live.size();
    std::size_t assocs = 0;
    double filter_seconds = 0.0;
    for (std::size_t b = 0; b < brokers; ++b) {
      const Broker& broker = broker_at(b);
      assocs += broker.engine().association_count();
      filter_seconds += broker.filter_seconds();
    }
    pr.associations = assocs;
    pr.match_seconds = filter_seconds;
    pr.wall_seconds = wall.seconds();
    report.phases.push_back(std::move(pr));
    overlay.reset_metrics();  // clears logs and filter timers for the next phase
  }

  if (config_.pruning) {
    for (std::size_t b = 0; b < brokers; ++b) {
      const auto m = broker_at(b).pruning()->maintenance();
      report.maintenance.admissions += m.admissions;
      report.maintenance.releases += m.releases;
      report.maintenance.queue_compactions += m.queue_compactions;
      report.maintenance.full_rescores += m.full_rescores;
    }
  }
  return report;
}

}  // namespace dbsp
