#include "scenario/workload_domain.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "workload/event_gen.hpp"
#include "workload/subscription_gen.hpp"

namespace dbsp {

std::vector<Event> EventSource::generate(std::size_t n) {
  std::vector<Event> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(next());
  return out;
}

namespace {

/// Adapts a concrete generator with a next()/next_tree() member to the
/// source interfaces.
template <class Gen>
class EventAdapter final : public EventSource {
 public:
  explicit EventAdapter(Gen gen) : gen_(std::move(gen)) {}
  Event next() override { return gen_.next(); }

 private:
  Gen gen_;
};

template <class Gen>
class SubscriptionAdapter final : public SubscriptionSource {
 public:
  explicit SubscriptionAdapter(Gen gen) : gen_(std::move(gen)) {}
  std::unique_ptr<Node> next() override { return gen_.next_tree(); }

 private:
  Gen gen_;
};

template <class Gen>
class HotSubscriptionAdapter final : public SubscriptionSource {
 public:
  explicit HotSubscriptionAdapter(Gen gen) : gen_(std::move(gen)) {}
  std::unique_ptr<Node> next() override { return gen_.hot_tree(); }

 private:
  Gen gen_;
};

class AuctionWorkload final : public WorkloadDomain {
 public:
  explicit AuctionWorkload(const WorkloadConfig& config) : domain_(config) {}

  std::string_view name() const override { return "auction"; }
  const Schema& schema() const override { return domain_.schema(); }

  std::unique_ptr<SubscriptionSource> subscriptions(std::uint64_t stream) const override {
    return std::make_unique<SubscriptionAdapter<AuctionSubscriptionGenerator>>(
        AuctionSubscriptionGenerator(domain_, stream));
  }
  std::unique_ptr<EventSource> events(std::uint64_t stream) const override {
    return std::make_unique<EventAdapter<AuctionEventGenerator>>(
        AuctionEventGenerator(domain_, stream));
  }
  std::unique_ptr<SubscriptionSource> flash_subscriptions(
      std::uint64_t stream) const override;

 private:
  AuctionDomain domain_;
};

/// The auction generators predate hot_tree(); flash-crowd subscriptions
/// are built here: bargain alerts piled onto the hottest category.
class AuctionFlashSource final : public SubscriptionSource {
 public:
  AuctionFlashSource(const AuctionDomain& domain, std::uint64_t stream)
      : domain_(&domain),
        rng_(domain.config().seed * 0xd6e8feb86659fd93ULL + stream + 503) {}

  std::unique_ptr<Node> next() override {
    const AuctionDomain& d = *domain_;
    std::vector<std::unique_ptr<Node>> parts;
    parts.push_back(Node::leaf(Predicate(d.category, Op::Eq, d.categories()[0])));
    parts.push_back(Node::leaf(Predicate(
        d.price, Op::Lt, std::round(rng_.uniform_real(10.0, 120.0)))));
    if (rng_.chance(0.4)) {
      parts.push_back(Node::leaf(Predicate(
          d.ends_in_hours, Op::Lt, std::round(rng_.uniform_real(2.0, 24.0)))));
    }
    return Node::and_(std::move(parts));
  }

 private:
  const AuctionDomain* domain_;
  Rng rng_;
};

std::unique_ptr<SubscriptionSource> AuctionWorkload::flash_subscriptions(
    std::uint64_t stream) const {
  return std::make_unique<AuctionFlashSource>(domain_, stream);
}

class StockWorkload final : public WorkloadDomain {
 public:
  explicit StockWorkload(const StockConfig& config) : domain_(config) {}

  std::string_view name() const override { return "stock"; }
  const Schema& schema() const override { return domain_.schema(); }

  std::unique_ptr<SubscriptionSource> subscriptions(std::uint64_t stream) const override {
    return std::make_unique<SubscriptionAdapter<StockSubscriptionGenerator>>(
        StockSubscriptionGenerator(domain_, stream));
  }
  std::unique_ptr<EventSource> events(std::uint64_t stream) const override {
    return std::make_unique<EventAdapter<StockEventGenerator>>(
        StockEventGenerator(domain_, stream));
  }
  std::unique_ptr<SubscriptionSource> flash_subscriptions(
      std::uint64_t stream) const override {
    return std::make_unique<HotSubscriptionAdapter<StockSubscriptionGenerator>>(
        StockSubscriptionGenerator(domain_, stream + 1000));
  }

 private:
  StockDomain domain_;
};

class IotWorkload final : public WorkloadDomain {
 public:
  explicit IotWorkload(const IotConfig& config) : domain_(config) {}

  std::string_view name() const override { return "iot"; }
  const Schema& schema() const override { return domain_.schema(); }

  std::unique_ptr<SubscriptionSource> subscriptions(std::uint64_t stream) const override {
    return std::make_unique<SubscriptionAdapter<IotSubscriptionGenerator>>(
        IotSubscriptionGenerator(domain_, stream));
  }
  std::unique_ptr<EventSource> events(std::uint64_t stream) const override {
    return std::make_unique<EventAdapter<IotEventGenerator>>(
        IotEventGenerator(domain_, stream));
  }
  std::unique_ptr<SubscriptionSource> flash_subscriptions(
      std::uint64_t stream) const override {
    return std::make_unique<HotSubscriptionAdapter<IotSubscriptionGenerator>>(
        IotSubscriptionGenerator(domain_, stream + 1000));
  }

 private:
  IotDomain domain_;
};

}  // namespace

std::unique_ptr<WorkloadDomain> make_auction_workload(const WorkloadConfig& config) {
  return std::make_unique<AuctionWorkload>(config);
}

std::unique_ptr<WorkloadDomain> make_stock_workload(const StockConfig& config) {
  return std::make_unique<StockWorkload>(config);
}

std::unique_ptr<WorkloadDomain> make_iot_workload(const IotConfig& config) {
  return std::make_unique<IotWorkload>(config);
}

const std::vector<std::string_view>& workload_names() {
  static const std::vector<std::string_view> names = {"auction", "stock", "iot"};
  return names;
}

std::unique_ptr<WorkloadDomain> make_workload(std::string_view name) {
  if (name == "auction") return make_auction_workload();
  if (name == "stock") return make_stock_workload();
  if (name == "iot") return make_iot_workload();
  throw std::invalid_argument("unknown workload domain: " + std::string(name));
}

}  // namespace dbsp
