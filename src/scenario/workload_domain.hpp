#pragma once

/// \file
/// The scenario subsystem's abstraction over workload domains. A
/// WorkloadDomain bundles a schema with deterministic, independently
/// seeded subscription and event streams; the ScenarioRunner drives any
/// domain through the same churn/flash-crowd/pruning machinery. Three
/// domains ship: the paper's auction workload, a stock ticker, and
/// mware-style IoT telemetry.

#include <memory>
#include <string_view>
#include <vector>

#include "event/event.hpp"
#include "event/schema.hpp"
#include "subscription/node.hpp"
#include "workload/auction_schema.hpp"
#include "workload/iot.hpp"
#include "workload/stock.hpp"

namespace dbsp {

/// A deterministic stream of subscription trees.
class SubscriptionSource {
 public:
  virtual ~SubscriptionSource() = default;
  [[nodiscard]] virtual std::unique_ptr<Node> next() = 0;
};

/// A deterministic stream of events.
class EventSource {
 public:
  virtual ~EventSource() = default;
  [[nodiscard]] virtual Event next() = 0;
  [[nodiscard]] std::vector<Event> generate(std::size_t n);
};

/// One pluggable workload domain. Streams created with the same `stream`
/// number replay identically; distinct numbers are statistically
/// independent (the convention of the experiment drivers: 1 =
/// subscriptions, 2 = published events, 3 = training sample).
class WorkloadDomain {
 public:
  virtual ~WorkloadDomain() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual const Schema& schema() const = 0;

  [[nodiscard]] virtual std::unique_ptr<SubscriptionSource> subscriptions(
      std::uint64_t stream) const = 0;
  [[nodiscard]] virtual std::unique_ptr<EventSource> events(
      std::uint64_t stream) const = 0;
  /// Flash-crowd arrivals: subscriptions concentrated on the domain's
  /// hottest interest (hot category / hot symbol / hot region), the shape a
  /// sudden event-driven pile-in produces.
  [[nodiscard]] virtual std::unique_ptr<SubscriptionSource> flash_subscriptions(
      std::uint64_t stream) const = 0;
};

[[nodiscard]] std::unique_ptr<WorkloadDomain> make_auction_workload(
    const WorkloadConfig& config = {});
[[nodiscard]] std::unique_ptr<WorkloadDomain> make_stock_workload(
    const StockConfig& config = {});
[[nodiscard]] std::unique_ptr<WorkloadDomain> make_iot_workload(
    const IotConfig& config = {});

/// The registered domain names ("auction", "stock", "iot").
[[nodiscard]] const std::vector<std::string_view>& workload_names();
/// Builds a domain by name with its default config; throws
/// std::invalid_argument for unknown names.
[[nodiscard]] std::unique_ptr<WorkloadDomain> make_workload(std::string_view name);

}  // namespace dbsp
