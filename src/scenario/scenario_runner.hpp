#pragma once

/// \file
/// The ScenarioRunner: drives a workload domain through timed phases of
/// interleaved subscribe/unsubscribe/publish against the public PubSub
/// facade (centralized mode) or a broker overlay, with adaptive pruning
/// maintenance (incremental admission/release + drift-triggered
/// retrain/rescore), and asserts exact delivery against a naive oracle the
/// whole way. Built entirely on the dbsp/dbsp.hpp surface — it is both the
/// substrate for long-running evaluations and the in-tree proof that the
/// public API carries churn, flash crowds, and pruning end to end.

#include <cstdint>
#include <string>
#include <vector>

#include "dbsp/dbsp.hpp"
#include "scenario/churn.hpp"

namespace dbsp {

/// One timed phase: publish `events` events while churning subscriptions
/// at the phase's rates.
struct ScenarioPhase {
  std::string name;
  std::size_t events = 0;
  ChurnConfig churn;
  /// Arrivals draw from the domain's flash_subscriptions() stream — the
  /// burst of near-identical interest a flash crowd produces. The crowd
  /// drains naturally in later phases via recency-biased departures.
  bool flash_crowd = false;
};

/// How the runner reaches the system under soak.
enum class ScenarioTransport {
  /// Direct calls into the in-process PubSub facade (or broker overlay).
  kInProcess,
  /// Real loopback TCP through a net::NetServer fronted by DbspClients —
  /// every subscribe/publish/notification crosses the dbspd wire protocol.
  /// Centralized only, and pruning must be off: the runner's oracle holds
  /// unpruned local tree clones, which server-side pruning would diverge
  /// from.
  kSockets,
};

struct ScenarioConfig {
  std::uint64_t seed = 42;
  std::size_t initial_subscriptions = 1000;
  /// Matcher shards (centralized engine or each broker's engine).
  std::size_t shards = 1;
  std::vector<ScenarioPhase> phases;

  // --- Aggregation ---------------------------------------------------------
  /// Centralized mode: run the aggregation front stage
  /// (PubSubOptions::aggregation) with DBSP_AGG_* knobs from the
  /// environment. Composes with pruning; drift retrains also rescore the
  /// aggregation dimensions.
  bool aggregation = false;

  // --- Pruning maintenance -------------------------------------------------
  bool pruning = true;
  PruneDimension dimension = PruneDimension::NetworkLoad;
  /// Maintained continuously: after every churn tick each shard is pruned
  /// back up to this fraction of its live capacity.
  double prune_fraction = 0.5;
  /// Per-shard table mutations before the drift trigger retrains the
  /// selectivity stats and re-scores queued candidates (0 = off).
  std::size_t drift_threshold = 200;

  // --- Selectivity statistics ----------------------------------------------
  /// Initial training sample (independent stream).
  std::size_t training_events = 2000;
  /// Rolling window of published events used by drift retraining.
  std::size_t stats_window = 4096;

  // --- Oracle --------------------------------------------------------------
  /// Centralized mode: verify every k-th event against direct tree
  /// evaluation (1 = every event; 0 disables checking).
  std::size_t check_every = 1;

  /// 0 = centralized single engine; >0 = a broker overlay line of this
  /// size (notification-log exactness checked per phase).
  std::size_t brokers = 0;

  /// Transport between the runner and the engine (see ScenarioTransport).
  ScenarioTransport transport = ScenarioTransport::kInProcess;

  // --- Tracing (sockets transport only) ------------------------------------
  /// Attach a client-side flight recorder to the publisher (every publish
  /// then carries an active trace context, head-sampled per
  /// `trace.sample_every`), record client-side e2e latency on the
  /// subscriber, pull the server's recorder through the traces wire verb
  /// at soak end, and report two-sided span coverage in ScenarioReport.
  bool tracing = false;
  /// Recorder knobs for both sides (zero fields resolve from DBSP_TRACE_*).
  obs::FlightRecorderOptions trace;

  // --- Durability / crash recovery -----------------------------------------
  /// Non-empty: the centralized runner opens its PubSub from this store
  /// directory (PubSub::open; created when missing) and every churn and
  /// pruning operation is logged durably. Incompatible with overlay mode.
  std::string store_directory;
  /// Phase indices (0-based) that crash the broker mid-phase: after half
  /// the phase's events the PubSub is destroyed without checkpoint or
  /// clean shutdown, reopened from the store, and every registration
  /// re-adopted — matching must stay oracle-exact throughout. Requires
  /// store_directory.
  std::vector<std::size_t> kill_recover_phases;
  /// Auto-checkpoint cadence of the store (WAL records between snapshots).
  std::size_t store_snapshot_every = 256;

  /// The standard 4-phase soak: steady warmup -> heavy churn -> flash
  /// crowd -> drain. Churn rates scale with the initial population.
  [[nodiscard]] static ScenarioConfig soak(std::size_t initial_subs,
                                           std::size_t events_per_phase);
};

struct ScenarioPhaseReport {
  std::string name;
  std::size_t events = 0;
  std::size_t subscribes = 0;
  std::size_t unsubscribes = 0;
  std::size_t prunings = 0;
  std::size_t drift_retrains = 0;
  std::size_t live_subscriptions = 0;  ///< at phase end
  std::size_t associations = 0;        ///< filter-table memory proxy at phase end
  std::uint64_t matches = 0;           ///< notifications delivered
  std::size_t oracle_checked = 0;
  std::size_t oracle_mismatches = 0;
  /// Matching time: facade publish (match + callback dispatch) in
  /// centralized mode, per-broker filter CPU time in overlay mode.
  double match_seconds = 0.0;
  double wall_seconds = 0.0;
  // --- Kill-and-recover (durable runs only) --------------------------------
  std::size_t recoveries = 0;        ///< crash/reopen cycles in this phase
  double recovery_seconds = 0.0;     ///< open() + re-adoption wall time
  std::size_t recovered_subscriptions = 0;  ///< live population after recovery
  std::uint64_t replayed_wal_records = 0;   ///< WAL records open() replayed
};

struct ScenarioReport {
  std::string domain;
  std::string mode;  ///< "centralized", "overlay", or "sockets"
  std::size_t shards = 0;
  std::vector<ScenarioPhaseReport> phases;
  /// Aggregated pruning maintenance counters (all shards / brokers).
  PruningEngine::MaintenanceCounters maintenance;
  /// Full registry scrape (obs::to_json) captured after the last phase.
  /// Empty in overlay mode (no single facade) or with metrics disabled.
  std::string metrics_json;
  /// Wall time of that final snapshot + serialization, in microseconds —
  /// what one monitoring scrape costs the broker.
  double scrape_cost_us = 0.0;

  // --- Tracing coverage (sockets transport with config.tracing) ------------
  /// Publishes sent while tracing was on (every one carried a context).
  std::size_t traced_publishes = 0;
  /// Of those, head-sampled ones — retained on both sides by contract.
  std::size_t sampled_publishes = 0;
  /// Entries readable from the client-side recorder at soak end.
  std::size_t client_traces = 0;
  /// Entries pulled from the server through the traces wire verb.
  std::size_t server_traces = 0;
  /// Trace ids with spans on *both* sides — a client_request entry here
  /// and a server entry (server_dispatch or delivery) over the wire.
  std::size_t joined_traces = 0;
  /// Client-side publish-to-notification latency samples recorded into
  /// dbsp_e2e_latency_us (subscriber side).
  std::uint64_t e2e_latency_samples = 0;

  /// True iff every oracle check passed in every phase.
  [[nodiscard]] bool exact() const;
  [[nodiscard]] std::size_t total_events() const;
  [[nodiscard]] std::size_t total_churn_ops() const;
  [[nodiscard]] std::size_t total_mismatches() const;
  [[nodiscard]] double total_match_seconds() const;
  [[nodiscard]] double total_wall_seconds() const;
  [[nodiscard]] std::size_t total_recoveries() const;
  [[nodiscard]] double total_recovery_seconds() const;
  [[nodiscard]] std::uint64_t total_replayed_wal_records() const;
};

/// Runs one scenario to completion. Deterministic apart from the timing
/// fields for a given (domain config, ScenarioConfig) pair: all churn,
/// workload, and pruning decisions are seeded, and matching is exercised
/// through the single-event path.
class ScenarioRunner {
 public:
  ScenarioRunner(const WorkloadDomain& domain, ScenarioConfig config);

  [[nodiscard]] ScenarioReport run();

 private:
  [[nodiscard]] ScenarioReport run_centralized();
  [[nodiscard]] ScenarioReport run_overlay();
  [[nodiscard]] ScenarioReport run_sockets();

  const WorkloadDomain* domain_;
  ScenarioConfig config_;
};

}  // namespace dbsp
