#include "store/wal.hpp"

#include <cerrno>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace dbsp::store {

namespace {

std::vector<std::uint8_t> frame(std::span<const std::uint8_t> payload) {
  WireWriter w;
  w.put_u32(static_cast<std::uint32_t>(payload.size()));
  w.put_u32(crc32(payload));
  std::vector<std::uint8_t> out = std::move(w).take();
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::FILE* open_or_throw(const std::string& path, const char* mode) {
  std::FILE* f = std::fopen(path.c_str(), mode);
  if (f == nullptr) {
    throw StoreError("store: cannot open WAL " + path + ": " + std::strerror(errno),
                     /*io=*/true);
  }
  return f;
}

}  // namespace

std::unique_ptr<WalWriter> WalWriter::create(const std::string& path,
                                             std::uint64_t epoch, bool sync) {
  WireWriter file;
  encode_wire_header(file);
  file.put_u8(static_cast<std::uint8_t>(FileKind::kWal));
  WireWriter epoch_payload;
  encode_epoch_header(epoch, epoch_payload);
  file.put_bytes(frame(epoch_payload.bytes()));
  // tmp + rename: a crash mid-creation (e.g. between a checkpoint's
  // snapshot rename and the WAL truncation) leaves the previous WAL
  // intact, never a partial header recovery would reject.
  write_file_atomic(path, file.bytes(), sync);
  return reopen(path, epoch, sync);
}

std::unique_ptr<WalWriter> WalWriter::reopen(const std::string& path,
                                             std::uint64_t epoch, bool sync) {
  std::FILE* f = open_or_throw(path, "ab");
  return std::unique_ptr<WalWriter>(new WalWriter(f, epoch, sync));
}

WalWriter::~WalWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

void WalWriter::write_raw(std::span<const std::uint8_t> bytes) {
  bool ok = bytes.empty() ||
            std::fwrite(bytes.data(), 1, bytes.size(), file_) == bytes.size();
  ok = ok && std::fflush(file_) == 0;
#if defined(__unix__) || defined(__APPLE__)
  if (ok && sync_) ok = ::fsync(fileno(file_)) == 0;
#endif
  if (!ok) throw StoreError("store: WAL append failed", /*io=*/true);
  bytes_ += bytes.size();
}

void WalWriter::append(std::span<const std::uint8_t> payload) {
  write_raw(frame(payload));
  ++records_;
}

namespace {

/// Validates the file header and returns the byte offset after it.
std::size_t check_wal_header(const std::vector<std::uint8_t>& bytes,
                             const std::string& path) {
  WireReader header(bytes);
  (void)decode_wire_header(header);
  if (header.get_u8() != static_cast<std::uint8_t>(FileKind::kWal)) {
    throw StoreError("store: " + path + " is not a WAL file");
  }
  return bytes.size() - header.remaining();
}

}  // namespace

WalContents read_wal(const std::string& path) {
  const std::vector<std::uint8_t> bytes = read_file(path);

  WalContents wal;
  wal.bytes = bytes.size();
  std::size_t pos = check_wal_header(bytes, path);
  bool first = true;
  while (pos < bytes.size()) {
    wal.clean_bytes = pos;
    if (bytes.size() - pos < 8) {
      // Torn tail: a kill mid-append left a partial frame header. The
      // complete prefix is a consistent log; only the unacknowledged
      // final write is lost.
      wal.torn_tail = true;
      break;
    }
    WireReader fr(std::span<const std::uint8_t>(bytes.data() + pos, 8));
    const std::uint32_t len = fr.get_u32();
    const std::uint32_t crc = fr.get_u32();
    pos += 8;
    if (len == 0) {
      throw StoreError("store: zero-length WAL record in " + path);
    }
    if (len > bytes.size() - pos) {
      wal.torn_tail = true;  // payload ran past end-of-file mid-write
      break;
    }
    const std::span<const std::uint8_t> payload(bytes.data() + pos, len);
    if (crc32(payload) != crc) {
      throw StoreError("store: WAL record checksum mismatch in " + path);
    }
    pos += len;
    WalRecord rec = decode_record(payload);
    if (first) {
      if (rec.type != RecordType::kEpochHeader) {
        throw StoreError("store: WAL does not start with an epoch record");
      }
      wal.epoch = rec.epoch;
      first = false;
      continue;
    }
    if (rec.type == RecordType::kEpochHeader) {
      throw StoreError("store: duplicate epoch record in " + path);
    }
    wal.records.push_back(std::move(rec));
  }
  if (!wal.torn_tail) wal.clean_bytes = pos;
  // An epoch-less WAL cannot be attributed to a snapshot. Creation is
  // atomic, so even a torn tail cannot produce this from our own writer —
  // it is external damage.
  if (first) throw StoreError("store: WAL missing its epoch record");
  return wal;
}

std::uint64_t read_wal_epoch(const std::string& path) {
  // Only the header plus the (fixed, small) epoch frame is needed; don't
  // pull a potentially large log into memory twice per recovery.
  constexpr std::size_t kPrefix = 64;
  std::FILE* f = open_or_throw(path, "rb");
  std::vector<std::uint8_t> bytes(kPrefix);
  const std::size_t got = std::fread(bytes.data(), 1, bytes.size(), f);
  const bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) throw StoreError("store: read error on " + path, /*io=*/true);
  bytes.resize(got);

  const std::size_t pos = check_wal_header(bytes, path);
  if (bytes.size() - pos < 8) {
    throw StoreError("store: WAL missing its epoch record");
  }
  WireReader fr(std::span<const std::uint8_t>(bytes.data() + pos, 8));
  const std::uint32_t len = fr.get_u32();
  const std::uint32_t crc = fr.get_u32();
  // A genuine epoch record is 9 bytes and always fits the prefix; any
  // length that does not is a malformed or truncated header.
  if (len == 0 || len > bytes.size() - pos - 8) {
    throw StoreError("store: truncated WAL epoch record in " + path);
  }
  const std::span<const std::uint8_t> payload(bytes.data() + pos + 8, len);
  if (crc32(payload) != crc) {
    throw StoreError("store: WAL epoch record checksum mismatch in " + path);
  }
  const WalRecord rec = decode_record(payload);
  if (rec.type != RecordType::kEpochHeader) {
    throw StoreError("store: WAL does not start with an epoch record");
  }
  return rec.epoch;
}

}  // namespace dbsp::store
