#include "store/snapshot.hpp"

#include <utility>

namespace dbsp::store {

void write_snapshot(const std::string& path, std::uint64_t epoch,
                    const SnapshotData& data, bool sync) {
  WireWriter body;
  body.put_u64(epoch);
  body.put_u64(data.next_id);
  body.put_u64(data.next_seq);
  encode_schema(*data.schema, body);
  body.put_u64(data.subs.size());
  for (const SnapshotSub& sub : data.subs) {
    body.put_u32(sub.id.value());
    body.put_u64(sub.capacity);
    body.put_u64(sub.performed);
    encode_tree(*sub.tree, body);
  }
  if (data.stats != nullptr) {
    body.put_u8(1);
    WireWriter stats;
    data.stats->save(stats);
    body.put_u64(stats.size());
    body.put_bytes(stats.bytes());
  } else {
    body.put_u8(0);
  }

  WireWriter file;
  encode_wire_header(file);
  file.put_u8(static_cast<std::uint8_t>(FileKind::kSnapshot));
  file.put_u64(body.size());
  file.put_u32(crc32(body.bytes()));
  std::vector<std::uint8_t> out = std::move(file).take();
  out.insert(out.end(), body.bytes().begin(), body.bytes().end());
  write_file_atomic(path, out, sync);
}

LoadedSnapshot read_snapshot(const std::string& path) {
  const std::vector<std::uint8_t> bytes = read_file(path);
  WireReader in(bytes);
  (void)decode_wire_header(in);
  if (in.get_u8() != static_cast<std::uint8_t>(FileKind::kSnapshot)) {
    throw StoreError("store: " + path + " is not a snapshot file");
  }
  const std::uint64_t len = in.get_u64();
  const std::uint32_t crc = in.get_u32();
  if (len != in.remaining()) {
    throw StoreError("store: truncated snapshot body in " + path);
  }
  const std::span<const std::uint8_t> body(bytes.data() + (bytes.size() - len), len);
  if (crc32(body) != crc) {
    throw StoreError("store: snapshot checksum mismatch in " + path);
  }

  WireReader b(body);
  LoadedSnapshot snap;
  snap.epoch = b.get_u64();
  snap.next_id = b.get_u64();
  snap.next_seq = b.get_u64();
  snap.schema = decode_schema(b);
  const std::uint64_t count = b.get_u64();
  // Each subscription needs at least id + capacity + performed + one tree
  // byte; reject hostile counts before reserving.
  if (count > b.remaining() / 21) {
    throw StoreError("store: snapshot subscription count exceeds input");
  }
  snap.subs.reserve(count);
  SubscriptionId::value_type prev = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    LoadedSub sub;
    sub.id = SubscriptionId(b.get_u32());
    if (!sub.id.valid() || (i > 0 && sub.id.value() <= prev)) {
      throw StoreError("store: snapshot subscriptions out of order");
    }
    prev = sub.id.value();
    sub.capacity = b.get_u64();
    sub.performed = b.get_u64();
    sub.tree = decode_tree(b);
    snap.subs.push_back(std::move(sub));
  }
  const std::uint8_t stats_flag = b.get_u8();
  if (stats_flag > 1) throw StoreError("store: bad snapshot stats flag");
  if (stats_flag == 1) {
    const std::uint64_t stats_len = b.get_u64();
    if (stats_len != b.remaining()) {
      throw StoreError("store: truncated snapshot statistics in " + path);
    }
    snap.stats.assign(body.end() - static_cast<std::ptrdiff_t>(stats_len),
                      body.end());
  } else if (!b.exhausted()) {
    throw StoreError("store: trailing bytes in snapshot body");
  }
  return snap;
}

}  // namespace dbsp::store
