#pragma once

/// \file
/// Compacted snapshots of the durable state store: one CRC-framed body
/// capturing the full subscription table (current, possibly pruned trees
/// plus pruning accounting), the trained EventStats, and the id/sequence
/// counters. A snapshot supersedes every WAL record of earlier epochs;
/// after one is written the WAL is truncated to a fresh epoch.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "selectivity/stats.hpp"
#include "store/format.hpp"

namespace dbsp::store {

/// One subscription as captured by a snapshot writer (borrowing views of
/// live engine state).
struct SnapshotSub {
  SubscriptionId id;
  std::size_t capacity = 0;   ///< pruning capacity at original registration
  std::size_t performed = 0;  ///< prunings applied so far
  const Node* tree = nullptr;  ///< current (possibly pruned) tree
};

/// Borrowed view of everything a snapshot captures.
struct SnapshotData {
  const Schema* schema = nullptr;
  std::uint64_t next_id = 0;
  std::uint64_t next_seq = 0;
  std::vector<SnapshotSub> subs;      ///< ascending id
  const EventStats* stats = nullptr;  ///< nullptr = not trained yet
};

/// Owned equivalent produced by a snapshot reader.
struct LoadedSub {
  SubscriptionId id;
  std::size_t capacity = 0;
  std::size_t performed = 0;
  std::unique_ptr<Node> tree;
};

struct LoadedSnapshot {
  std::uint64_t epoch = 0;
  Schema schema;
  std::uint64_t next_id = 0;
  std::uint64_t next_seq = 0;
  std::vector<LoadedSub> subs;       ///< ascending id
  std::vector<std::uint8_t> stats;   ///< serialized EventStats; empty = untrained
};

/// Writes a snapshot atomically (via format.hpp's tmp + rename).
void write_snapshot(const std::string& path, std::uint64_t epoch,
                    const SnapshotData& data, bool sync);

/// Reads and CRC-verifies a snapshot. Throws StoreError/WireError on any
/// truncation or corruption.
[[nodiscard]] LoadedSnapshot read_snapshot(const std::string& path);

}  // namespace dbsp::store
