#include "store/format.hpp"

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace dbsp::store {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const std::uint8_t byte : data) {
    crc = table[(crc ^ byte) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

// --- Record payload codecs ---------------------------------------------------

void encode_epoch_header(std::uint64_t epoch, WireWriter& out) {
  out.put_u8(static_cast<std::uint8_t>(RecordType::kEpochHeader));
  out.put_u64(epoch);
}

void encode_subscribe(SubscriptionId id, const Node& tree, WireWriter& out) {
  out.put_u8(static_cast<std::uint8_t>(RecordType::kSubscribe));
  out.put_u32(id.value());
  encode_tree(tree, out);
}

void encode_unsubscribe(SubscriptionId id, WireWriter& out) {
  out.put_u8(static_cast<std::uint8_t>(RecordType::kUnsubscribe));
  out.put_u32(id.value());
}

void encode_prune(SubscriptionId id, const Node& tree, WireWriter& out) {
  out.put_u8(static_cast<std::uint8_t>(RecordType::kPrune));
  out.put_u32(id.value());
  encode_tree(tree, out);
}

void encode_train_checkpoint(std::span<const std::uint8_t> stats, WireWriter& out) {
  out.put_u8(static_cast<std::uint8_t>(RecordType::kTrainCheckpoint));
  out.put_bytes(stats);
}

WalRecord decode_record(std::span<const std::uint8_t> payload) {
  WireReader in(payload);
  WalRecord rec;
  const std::uint8_t type = in.get_u8();
  switch (static_cast<RecordType>(type)) {
    case RecordType::kEpochHeader:
      rec.type = RecordType::kEpochHeader;
      rec.epoch = in.get_u64();
      break;
    case RecordType::kSubscribe:
      rec.type = RecordType::kSubscribe;
      rec.sub = SubscriptionId(in.get_u32());
      rec.tree = decode_tree(in);
      break;
    case RecordType::kUnsubscribe:
      rec.type = RecordType::kUnsubscribe;
      rec.sub = SubscriptionId(in.get_u32());
      break;
    case RecordType::kPrune:
      rec.type = RecordType::kPrune;
      rec.sub = SubscriptionId(in.get_u32());
      rec.tree = decode_tree(in);
      break;
    case RecordType::kTrainCheckpoint:
      rec.type = RecordType::kTrainCheckpoint;
      // The stats blob is self-delimiting only to EventStats::load; at the
      // framing level it simply occupies the rest of the record.
      rec.stats.assign(payload.begin() + 1, payload.end());
      return rec;
    default:
      throw StoreError("store: unknown WAL record type " + std::to_string(type));
  }
  if (!in.exhausted()) throw StoreError("store: trailing bytes in WAL record");
  return rec;
}

// --- Schema codec ------------------------------------------------------------

void encode_schema(const Schema& schema, WireWriter& out) {
  out.put_u32(static_cast<std::uint32_t>(schema.attribute_count()));
  for (std::size_t i = 0; i < schema.attribute_count(); ++i) {
    const AttributeId attr(static_cast<AttributeId::value_type>(i));
    out.put_string(schema.name(attr));
    out.put_u8(static_cast<std::uint8_t>(schema.type(attr)));
  }
}

Schema decode_schema(WireReader& in) {
  const std::uint32_t count = in.get_u32();
  // Every attribute needs at least its name length (4) plus the type byte.
  if (count > in.remaining() / 5) {
    throw StoreError("store: schema attribute count exceeds input");
  }
  Schema schema;
  for (std::uint32_t i = 0; i < count; ++i) {
    std::string name = in.get_string();
    const std::uint8_t type = in.get_u8();
    if (type > static_cast<std::uint8_t>(ValueType::Bool)) {
      throw StoreError("store: unknown attribute type in schema");
    }
    // Checked before add_attribute: a same-name re-add with a conflicting
    // type would throw std::invalid_argument, which must not escape the
    // clean-Status contract of PubSub::open.
    if (schema.find(name).has_value()) {
      throw StoreError("store: duplicate attribute name in schema");
    }
    const AttributeId id =
        schema.add_attribute(std::move(name), static_cast<ValueType>(type));
    if (id.value() != i) {
      throw StoreError("store: unexpected attribute id in schema");
    }
  }
  return schema;
}

bool schemas_equal(const Schema& a, const Schema& b) {
  if (a.attribute_count() != b.attribute_count()) return false;
  for (std::size_t i = 0; i < a.attribute_count(); ++i) {
    const AttributeId attr(static_cast<AttributeId::value_type>(i));
    if (a.name(attr) != b.name(attr) || a.type(attr) != b.type(attr)) return false;
  }
  return true;
}

// --- File helpers ------------------------------------------------------------

std::vector<std::uint8_t> read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw StoreError("store: cannot open " + path + ": " + std::strerror(errno),
                     /*io=*/true);
  }
  std::vector<std::uint8_t> bytes;
  std::array<std::uint8_t, 1 << 16> buf;
  std::size_t n = 0;
  while ((n = std::fread(buf.data(), 1, buf.size(), f)) > 0) {
    bytes.insert(bytes.end(), buf.data(), buf.data() + n);
  }
  const bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) throw StoreError("store: read error on " + path, /*io=*/true);
  return bytes;
}

namespace {

/// fsyncs the directory entry table so a completed rename survives power
/// loss — the file-data fsync alone does not make the new *name* durable.
void sync_parent_directory(const std::string& path) {
#if defined(__unix__) || defined(__APPLE__)
  const std::string dir = std::filesystem::path(path).parent_path().string();
  const int fd = ::open(dir.empty() ? "." : dir.c_str(), O_RDONLY);
  if (fd < 0) {
    throw StoreError("store: cannot open directory of " + path + " for fsync",
                     /*io=*/true);
  }
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  if (!ok) {
    throw StoreError("store: directory fsync failed for " + path, /*io=*/true);
  }
#else
  (void)path;
#endif
}

}  // namespace

void write_file_atomic(const std::string& path, std::span<const std::uint8_t> bytes,
                       bool sync) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    throw StoreError("store: cannot create " + tmp + ": " + std::strerror(errno),
                     /*io=*/true);
  }
  const bool wrote =
      bytes.empty() || std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  bool ok = wrote && std::fflush(f) == 0;
#if defined(__unix__) || defined(__APPLE__)
  if (ok && sync) ok = ::fsync(fileno(f)) == 0;
#else
  (void)sync;
#endif
  ok = (std::fclose(f) == 0) && ok;
  if (!ok) {
    std::remove(tmp.c_str());
    throw StoreError("store: write error on " + tmp, /*io=*/true);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    throw StoreError("store: cannot rename " + tmp + " over " + path + ": " +
                         ec.message(),
                     /*io=*/true);
  }
  if (sync) sync_parent_directory(path);
}

}  // namespace dbsp::store
