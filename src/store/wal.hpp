#pragma once

/// \file
/// The append-only write-ahead log of the durable state store: one framed,
/// CRC-checked record per subscription-lifecycle operation (see
/// store/format.hpp for the layout). A WAL belongs to exactly one snapshot
/// epoch — its first record names it — so a crash between "snapshot
/// renamed" and "WAL truncated" leaves a *stale* WAL that recovery detects
/// by epoch and discards instead of double-applying.

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "store/format.hpp"

namespace dbsp::store {

/// Appends framed records to a WAL file. Each append is flushed to the OS
/// (and fsync'd when `sync`) before returning, so a process crash — as
/// opposed to a machine crash without fsync — never loses an acknowledged
/// record. Not thread-safe: the writer is reached only through the owning
/// StateStore, itself guarded by the PubSub facade mutex (see
/// state_store.hpp), so appends are serialized end to end.
class WalWriter {
 public:
  /// Creates `path` atomically (tmp + rename: a crash mid-creation leaves
  /// the previous file, never a partial one) with a fresh header and the
  /// epoch record, then reopens it for appending. Throws StoreError(io).
  static std::unique_ptr<WalWriter> create(const std::string& path,
                                           std::uint64_t epoch, bool sync);
  /// Reopens an existing, already-validated WAL for appending.
  static std::unique_ptr<WalWriter> reopen(const std::string& path,
                                           std::uint64_t epoch, bool sync);

  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Frames (len + crc32) and appends one record payload.
  void append(std::span<const std::uint8_t> payload);

  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  /// Records appended through this writer (the epoch record not counted).
  [[nodiscard]] std::uint64_t records_appended() const { return records_; }
  /// Framed bytes appended through this writer.
  [[nodiscard]] std::uint64_t bytes_appended() const { return bytes_; }

 private:
  WalWriter(std::FILE* f, std::uint64_t epoch, bool sync)
      : file_(f), epoch_(epoch), sync_(sync) {}
  void write_raw(std::span<const std::uint8_t> bytes);

  std::FILE* file_;
  std::uint64_t epoch_;
  bool sync_;
  std::uint64_t records_ = 0;
  std::uint64_t bytes_ = 0;
};

/// A fully parsed and CRC-verified WAL.
struct WalContents {
  std::uint64_t epoch = 0;
  std::vector<WalRecord> records;  ///< in append order, epoch record excluded
  std::uint64_t bytes = 0;         ///< total file size
  /// True when the file ends in an incomplete frame — the signature of a
  /// kill mid-append (torn write). `clean_bytes` is the offset of the last
  /// complete record; the owner truncates the file there before appending.
  bool torn_tail = false;
  std::uint64_t clean_bytes = 0;
};

/// Reads and verifies a whole WAL file. A frame that runs past end-of-file
/// is a torn tail from a crash mid-append: the complete prefix is returned
/// with `torn_tail` set, losing only the unacknowledged final write.
/// Everything else stays strict — a CRC mismatch on a complete frame, a
/// bad header, or a malformed record payload throw StoreError/WireError;
/// corruption is never silently skipped.
[[nodiscard]] WalContents read_wal(const std::string& path);

/// Reads only the header and the (strictly verified) epoch record. Cheap
/// pre-check: a stale-epoch WAL — left by a crash between "snapshot
/// renamed" and "WAL truncated" — is superseded in full by the snapshot,
/// so recovery discards it on the epoch alone instead of demanding that
/// its obsolete tail still validate.
[[nodiscard]] std::uint64_t read_wal_epoch(const std::string& path);

}  // namespace dbsp::store
