#pragma once

/// \file
/// Shared on-disk format of the durable state store (src/store/). Both
/// store files open with the routing/codec wire header (magic + format
/// version, so the format is evolvable) followed by a file-kind byte;
/// all payloads reuse the codec's value/tree encodings:
///
///   WAL      := wire-header, kind u8 (1), record*
///   record   := len u32, crc32 u32, payload[len]
///   payload  := type u8, body   (see RecordType)
///   snapshot := wire-header, kind u8 (2), len u64, crc32 u32, body[len]
///
/// Every record and the snapshot body carry a CRC-32 so truncation and
/// bit-flips surface as clean StoreErrors — never as out-of-bounds reads
/// or silently wrong state (store_corruption_test fuzzes exactly this).

#include <cstdint>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "event/schema.hpp"
#include "routing/codec.hpp"
#include "subscription/node.hpp"

namespace dbsp::store {

/// Raised on any store failure. io() distinguishes filesystem errors
/// (surfaced as ErrorCode::kIoError by the facade) from corrupt or
/// truncated content (ErrorCode::kDataLoss); not_found() marks the one
/// io-shaped case the facade reports as kNotFound (no store and
/// create_if_missing off).
class StoreError : public std::runtime_error {
 public:
  explicit StoreError(const std::string& what, bool io = false)
      : std::runtime_error(what), io_(io) {}

  [[nodiscard]] static StoreError not_found(const std::string& what) {
    StoreError e(what, /*io=*/true);
    e.not_found_ = true;
    return e;
  }

  [[nodiscard]] bool io() const { return io_; }
  [[nodiscard]] bool not_found() const { return not_found_; }

 private:
  bool io_;
  bool not_found_ = false;
};

/// CRC-32 (IEEE 802.3 polynomial) — the per-record checksum.
[[nodiscard]] std::uint32_t crc32(std::span<const std::uint8_t> data);

/// File kinds, written right after the wire header.
enum class FileKind : std::uint8_t { kWal = 1, kSnapshot = 2 };

/// WAL record types: the subscription lifecycle plus statistics training.
enum class RecordType : std::uint8_t {
  kEpochHeader = 1,      ///< first record of every WAL: the epoch it extends
  kSubscribe = 2,        ///< sub id + the filter tree as registered
  kUnsubscribe = 3,      ///< sub id
  kPrune = 4,            ///< sub id + the full tree as it stands after the pruning
  kTrainCheckpoint = 5,  ///< serialized EventStats (selectivity/stats.hpp)
};

/// One decoded WAL record. `tree` is set for kSubscribe/kPrune, `stats`
/// (serialized EventStats bytes) for kTrainCheckpoint, `epoch` for
/// kEpochHeader.
struct WalRecord {
  RecordType type = RecordType::kEpochHeader;
  std::uint64_t epoch = 0;
  SubscriptionId sub;
  std::unique_ptr<Node> tree;
  std::vector<std::uint8_t> stats;
};

// --- Record payload codecs ---------------------------------------------------

void encode_epoch_header(std::uint64_t epoch, WireWriter& out);
void encode_subscribe(SubscriptionId id, const Node& tree, WireWriter& out);
void encode_unsubscribe(SubscriptionId id, WireWriter& out);
void encode_prune(SubscriptionId id, const Node& tree, WireWriter& out);
/// `stats` are the bytes produced by EventStats::save.
void encode_train_checkpoint(std::span<const std::uint8_t> stats, WireWriter& out);

/// Decodes one record payload (the bytes between two CRC frames). Throws
/// WireError/StoreError on malformed input, including trailing garbage.
[[nodiscard]] WalRecord decode_record(std::span<const std::uint8_t> payload);

// --- Schema codec ------------------------------------------------------------

void encode_schema(const Schema& schema, WireWriter& out);
[[nodiscard]] Schema decode_schema(WireReader& in);
/// Exact equality: same attributes, same order, same types.
[[nodiscard]] bool schemas_equal(const Schema& a, const Schema& b);

// --- File helpers ------------------------------------------------------------

/// Reads a whole file; throws StoreError(io) when it cannot be opened/read.
[[nodiscard]] std::vector<std::uint8_t> read_file(const std::string& path);

/// Writes `path` atomically: the bytes go to `path + ".tmp"` (flushed, and
/// fsync'd when `sync`), which is then renamed over `path`. Readers never
/// observe a half-written file.
void write_file_atomic(const std::string& path, std::span<const std::uint8_t> bytes,
                       bool sync);

}  // namespace dbsp::store
