#include "store/state_store.hpp"

#include <algorithm>
#include <filesystem>
#include <map>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>
#endif

#include "common/env.hpp"
#include "core/candidates.hpp"
#include "obs/trace.hpp"

namespace dbsp::store {

namespace fs = std::filesystem;

namespace {

constexpr const char* kSnapshotFile = "snapshot.dbsp";
constexpr const char* kWalFile = "wal.dbsp";

std::string sub_label(SubscriptionId id) {
  return "subscription #" + std::to_string(id.value());
}

/// Applies the WAL records on top of the snapshot state. The log is exact
/// (subscribe rolls back when its append fails), so an id mismatch means
/// corruption, not a benign gap.
void replay(std::vector<WalRecord>& records, std::map<SubscriptionId::value_type,
            RecoveredSub>& subs, RecoveredState& state, StoreStats& stats) {
  for (WalRecord& rec : records) {
    ++stats.replayed_records;
    switch (rec.type) {
      case RecordType::kSubscribe: {
        if (!rec.sub.valid()) {
          throw StoreError("store: WAL subscribe with invalid id");
        }
        if (subs.count(rec.sub.value()) != 0) {
          throw StoreError("store: WAL subscribes " + sub_label(rec.sub) + " twice");
        }
        RecoveredSub sub;
        sub.id = rec.sub;
        // Same capture as PruningEngine::register_subscription saw at the
        // original registration: the tree in a subscribe record is unpruned.
        sub.capacity = internal_prunings(*rec.tree);
        sub.tree = std::move(rec.tree);
        subs.emplace(sub.id.value(), std::move(sub));
        state.next_id = std::max<std::uint64_t>(state.next_id, rec.sub.value() + 1ull);
        ++stats.replayed_subscribes;
        break;
      }
      case RecordType::kUnsubscribe: {
        if (subs.erase(rec.sub.value()) == 0) {
          throw StoreError("store: WAL unsubscribes unknown " + sub_label(rec.sub));
        }
        ++stats.replayed_unsubscribes;
        break;
      }
      case RecordType::kPrune: {
        const auto it = subs.find(rec.sub.value());
        if (it == subs.end()) {
          throw StoreError("store: WAL prunes unknown " + sub_label(rec.sub));
        }
        it->second.tree = std::move(rec.tree);
        ++it->second.performed;
        ++stats.replayed_prunes;
        break;
      }
      case RecordType::kTrainCheckpoint:
        state.stats = std::move(rec.stats);
        ++stats.replayed_train_checkpoints;
        break;
      case RecordType::kEpochHeader:
        // read_wal() strips the epoch record; a second one is corruption
        // and was already rejected there.
        throw StoreError("store: unexpected epoch record in WAL body");
    }
  }
}

}  // namespace

std::pair<std::unique_ptr<StateStore>, RecoveredState> StateStore::open(
    const StoreOptions& options) {
  if (options.directory.empty()) {
    throw StoreError("store: StoreOptions::directory is empty", /*io=*/true);
  }
  const std::size_t snapshot_every =
      options.snapshot_every != 0
          ? options.snapshot_every
          : static_cast<std::size_t>(
                std::max<std::int64_t>(1, env_int("DBSP_STORE_SNAPSHOT_EVERY", 1024)));
  const bool sync = options.fsync || env_bool("DBSP_STORE_FSYNC", false);

  std::unique_ptr<StateStore> store(
      new StateStore(options.directory, snapshot_every, sync));
  RecoveredState state;

  std::error_code ec;
  const bool have_snapshot = fs::exists(store->snapshot_path(), ec);
  const bool have_wal = fs::exists(store->wal_path(), ec);

  if (!have_snapshot) {
    if (have_wal) {
      throw StoreError("store: " + options.directory +
                       " has a WAL but no snapshot — refusing to guess");
    }
    if (!options.create_if_missing) {
      throw StoreError::not_found("store: no store at " + options.directory);
    }
    fs::create_directories(options.directory, ec);
    if (ec) {
      throw StoreError("store: cannot create " + options.directory + ": " +
                           ec.message(),
                       /*io=*/true);
    }
    store->acquire_lock();
    // A fresh store: an empty epoch-0 snapshot of the caller's schema plus
    // an empty epoch-0 WAL, so every later open() finds both files.
    state.schema = options.schema;
    SnapshotData empty;
    empty.schema = &state.schema;
    write_snapshot(store->snapshot_path(), 0, empty, sync);
    store->wal_ = WalWriter::create(store->wal_path(), 0, sync);
    store->epoch_ = 0;
    return {std::move(store), std::move(state)};
  }

  // --- Recovery: snapshot first, then the WAL of the matching epoch --------
  store->acquire_lock();  // before any read: keeps a live writer's
                          // checkpoint from racing this recovery
  LoadedSnapshot snap = read_snapshot(store->snapshot_path());
  state.schema = std::move(snap.schema);
  state.next_id = snap.next_id;
  state.next_seq = snap.next_seq;
  state.stats = std::move(snap.stats);
  store->epoch_ = snap.epoch;
  store->stats_.epoch = snap.epoch;
  store->stats_.recovered = true;
  store->stats_.snapshot_subscriptions = snap.subs.size();

  std::map<SubscriptionId::value_type, RecoveredSub> subs;
  for (LoadedSub& sub : snap.subs) {
    RecoveredSub r;
    r.id = sub.id;
    r.capacity = sub.capacity;
    r.performed = sub.performed;
    r.tree = std::move(sub.tree);
    subs.emplace(r.id.value(), std::move(r));
  }

  bool fresh_wal_needed = true;
  if (have_wal) {
    // Epoch first, full validation second: a stale-epoch WAL (crash between
    // "snapshot renamed" and "WAL truncated") is wholly superseded by the
    // snapshot, so corruption in its obsolete tail must not brick recovery.
    const std::uint64_t wal_epoch = read_wal_epoch(store->wal_path());
    if (wal_epoch > snap.epoch) {
      throw StoreError("store: WAL epoch " + std::to_string(wal_epoch) +
                       " is newer than snapshot epoch " + std::to_string(snap.epoch));
    }
    if (wal_epoch == snap.epoch) {
      WalContents wal = read_wal(store->wal_path());
      replay(wal.records, subs, state, store->stats_);
      if (wal.torn_tail) {
        // A kill mid-append left a partial final frame. Cut the file back
        // to its last complete record so new appends extend a clean log.
        std::filesystem::resize_file(store->wal_path(), wal.clean_bytes, ec);
        if (ec) {
          throw StoreError("store: cannot truncate torn WAL tail: " + ec.message(),
                           /*io=*/true);
        }
        store->stats_.recovered_torn_tail = true;
      }
      store->stats_.records_since_checkpoint = wal.records.size();
      store->wal_ = WalWriter::reopen(store->wal_path(), wal.epoch, sync);
      fresh_wal_needed = false;
    }
    // wal_epoch < snap.epoch: a crash hit between "snapshot renamed" and
    // "WAL truncated" — the snapshot supersedes every record in this WAL,
    // so it is discarded by the fresh create below.
  }
  if (fresh_wal_needed) {
    store->wal_ = WalWriter::create(store->wal_path(), snap.epoch, sync);
  }

  state.subs.reserve(subs.size());
  for (auto& [raw_id, sub] : subs) {
    state.next_id = std::max<std::uint64_t>(state.next_id, raw_id + 1ull);
    state.subs.push_back(std::move(sub));
  }
  return {std::move(store), std::move(state)};
}

StateStore::~StateStore() {
#if defined(__unix__) || defined(__APPLE__)
  if (lock_fd_ >= 0) {
    ::flock(lock_fd_, LOCK_UN);
    ::close(lock_fd_);
  }
#endif
}

void StateStore::acquire_lock() {
#if defined(__unix__) || defined(__APPLE__)
  const std::string path = (fs::path(directory_) / "lock").string();
  lock_fd_ = ::open(path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
  if (lock_fd_ < 0) {
    throw StoreError("store: cannot open lock file " + path, /*io=*/true);
  }
  if (::flock(lock_fd_, LOCK_EX | LOCK_NB) != 0) {
    ::close(lock_fd_);
    lock_fd_ = -1;
    throw StoreError("store: " + directory_ +
                         " is already open in another process (or PubSub)",
                     /*io=*/true);
  }
#endif
}

bool StateStore::exists(const std::string& directory) {
  std::error_code ec;
  return fs::exists(fs::path(directory) / kSnapshotFile, ec);
}

std::string StateStore::snapshot_path() const {
  return (fs::path(directory_) / kSnapshotFile).string();
}

std::string StateStore::wal_path() const {
  return (fs::path(directory_) / kWalFile).string();
}

void StateStore::append(const WireWriter& payload) {
  {
    obs::PhaseTimer timer(append_us_);
    wal_->append(payload.bytes());
  }
  ++stats_.wal_records;
  ++stats_.records_since_checkpoint;
  stats_.wal_bytes = wal_->bytes_appended();
}

void StateStore::append_subscribe(SubscriptionId id, const Node& tree) {
  WireWriter w;
  encode_subscribe(id, tree, w);
  append(w);
}

void StateStore::append_unsubscribe(SubscriptionId id) {
  WireWriter w;
  encode_unsubscribe(id, w);
  append(w);
}

void StateStore::append_prune(SubscriptionId id, const Node& tree) {
  WireWriter w;
  encode_prune(id, tree, w);
  append(w);
}

void StateStore::append_train(const EventStats& stats) {
  WireWriter inner;
  stats.save(inner);
  WireWriter w;
  encode_train_checkpoint(inner.bytes(), w);
  append(w);
}

void StateStore::checkpoint(const SnapshotData& data) {
  const std::uint64_t next_epoch = epoch_ + 1;
  write_snapshot(snapshot_path(), next_epoch, data, sync_);
  // Between the rename above and the create below the on-disk WAL carries
  // the old epoch; recovery discards it against the new snapshot, so a
  // crash in this window loses nothing and double-applies nothing.
  wal_.reset();
  wal_ = WalWriter::create(wal_path(), next_epoch, sync_);
  epoch_ = next_epoch;
  stats_.epoch = next_epoch;
  ++stats_.snapshots_written;
  stats_.records_since_checkpoint = 0;
}

}  // namespace dbsp::store
