#pragma once

/// \file
/// StateStore: the durability subsystem behind dbsp::PubSub::open(). One
/// directory holds a compacted snapshot (snapshot.dbsp) plus an append-only
/// WAL of subscription-lifecycle records (wal.dbsp); see store/format.hpp
/// for the byte layout and docs/ARCHITECTURE.md "Durability" for the
/// protocol. Recovery = load snapshot, replay the WAL of the matching
/// epoch; checkpoint = atomically replace the snapshot, then truncate the
/// WAL to a fresh epoch.
///
/// The class throws StoreError (and codec WireError) — the PubSub facade
/// converts both into the Status channel, so corrupt input surfaces as
/// ErrorCode::kDataLoss and filesystem failures as kIoError, never as UB.

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "store/snapshot.hpp"
#include "store/wal.hpp"

namespace dbsp {

/// Opening knobs of a durable PubSub (see PubSub::open).
struct StoreOptions {
  /// Directory holding snapshot.dbsp + wal.dbsp; created when missing (and
  /// create_if_missing is set).
  std::string directory;
  /// Schema used when creating a fresh store. For an existing store the
  /// persisted schema is authoritative; a non-empty schema here is then
  /// verified against it (exact names and types, kInvalidArgument on
  /// mismatch). Leave empty to accept whatever the store holds.
  Schema schema;
  /// Checkpoint automatically after this many WAL records. 0 = the
  /// DBSP_STORE_SNAPSHOT_EVERY environment knob, falling back to 1024.
  std::size_t snapshot_every = 0;
  /// fsync every WAL append and snapshot (machine-crash durability, not
  /// just process-crash). Defaults off; DBSP_STORE_FSYNC=1 forces it on.
  bool fsync = false;
  /// Refuse to create a fresh store (kNotFound) when the directory holds
  /// none — for "open what is there" callers.
  bool create_if_missing = true;
};

/// Durability counters of a live store (PubSub::store_stats()).
struct StoreStats {
  std::uint64_t epoch = 0;              ///< current snapshot epoch
  std::uint64_t wal_records = 0;        ///< records appended since open()
  std::uint64_t wal_bytes = 0;          ///< framed bytes appended since open()
  std::uint64_t snapshots_written = 0;  ///< checkpoints since open()
  std::uint64_t records_since_checkpoint = 0;
  // --- What open() found and replayed (zeros for a fresh store) ------------
  bool recovered = false;  ///< false = the store was created by this open()
  /// True when recovery found (and truncated away) a torn final WAL frame
  /// — the signature of a kill mid-append. Only that unacknowledged write
  /// was lost.
  bool recovered_torn_tail = false;
  std::uint64_t snapshot_subscriptions = 0;  ///< subs loaded from the snapshot
  std::uint64_t replayed_records = 0;        ///< WAL records applied on top
  std::uint64_t replayed_subscribes = 0;
  std::uint64_t replayed_unsubscribes = 0;
  std::uint64_t replayed_prunes = 0;
  std::uint64_t replayed_train_checkpoints = 0;
};

namespace store {

/// One recovered subscription (snapshot state + WAL replay applied).
struct RecoveredSub {
  SubscriptionId id;
  std::size_t capacity = 0;   ///< pruning capacity at original registration
  std::size_t performed = 0;  ///< prunings applied before the crash
  std::unique_ptr<Node> tree;  ///< current (possibly pruned) tree
};

/// Everything open() reconstructs for the facade.
struct RecoveredState {
  Schema schema;
  std::uint64_t next_id = 0;
  std::uint64_t next_seq = 0;
  std::vector<RecoveredSub> subs;   ///< ascending id
  std::vector<std::uint8_t> stats;  ///< serialized EventStats; empty = untrained
};

/// The directory-level store: owns the WAL writer and the checkpoint
/// protocol. Not thread-safe — single-writer by contract. Its one owner
/// is the PubSub facade, whose core declares the store pointer
/// DBSP_GUARDED_BY + DBSP_PT_GUARDED_BY the facade mutex: every append and
/// checkpoint provably runs under that lock (clang -Wthread-safety), and
/// the durable-churn stress test races the path under TSan. On
/// POSIX a flock-held `lock` file makes opens exclusive: a second open of
/// a live directory fails cleanly (kIoError) instead of two writers
/// sharing one WAL; the lock dies with the process, so a crash never
/// wedges the store.
class StateStore {
 public:
  /// Opens an existing store (recovering its state) or creates a fresh one.
  /// Throws StoreError on IO failure or corruption; never returns half a
  /// state.
  static std::pair<std::unique_ptr<StateStore>, RecoveredState> open(
      const StoreOptions& options);

  /// True when `directory` already holds a store (its snapshot exists).
  [[nodiscard]] static bool exists(const std::string& directory);

  ~StateStore();
  StateStore(const StateStore&) = delete;
  StateStore& operator=(const StateStore&) = delete;

  // --- Append hooks (one WAL record each; throw StoreError on failure) ------
  void append_subscribe(SubscriptionId id, const Node& tree);
  void append_unsubscribe(SubscriptionId id);
  void append_prune(SubscriptionId id, const Node& tree);
  void append_train(const EventStats& stats);

  /// True once snapshot_every records accumulated since the last
  /// checkpoint — the owner should build a SnapshotData and checkpoint().
  [[nodiscard]] bool wants_checkpoint() const {
    return stats_.records_since_checkpoint >= snapshot_every_;
  }

  /// Writes a compacted snapshot of `data` (epoch + 1) and truncates the
  /// WAL. Crash-safe: the snapshot replaces the old one atomically, and a
  /// crash before the WAL truncation leaves a stale-epoch WAL that the next
  /// recovery discards.
  void checkpoint(const SnapshotData& data);

  [[nodiscard]] const StoreStats& stats() const { return stats_; }
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }
  [[nodiscard]] const std::string& directory() const { return directory_; }

  /// Wires the WAL append+fsync latency histogram (microseconds per
  /// append, fsync included when enabled). `append_us` must outlive the
  /// store; nullptr detaches. The facade attaches the registry-owned
  /// `dbsp_phase_us{phase="wal_append"}` series here.
  void attach_metrics(obs::Histogram* append_us) { append_us_ = append_us; }

 private:
  StateStore(std::string directory, std::size_t snapshot_every, bool sync)
      : directory_(std::move(directory)),
        snapshot_every_(snapshot_every),
        sync_(sync) {}

  void append(const WireWriter& payload);
  /// Takes the directory's exclusive flock (POSIX; no-op elsewhere).
  void acquire_lock();
  [[nodiscard]] std::string snapshot_path() const;
  [[nodiscard]] std::string wal_path() const;

  std::string directory_;
  std::size_t snapshot_every_;
  bool sync_;
  std::uint64_t epoch_ = 0;
  std::unique_ptr<WalWriter> wal_;
  StoreStats stats_;
  obs::Histogram* append_us_ = nullptr;
  int lock_fd_ = -1;
};

}  // namespace store
}  // namespace dbsp
