#include "agg/aggregator.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

#include "common/env.hpp"

namespace dbsp::agg {

AggregatorOptions AggregatorOptions::from_env() {
  AggregatorOptions o;
  o.dimensions = static_cast<std::size_t>(
      env_int("DBSP_AGG_DIMENSIONS", static_cast<std::int64_t>(o.dimensions)));
  o.max_subgroups = static_cast<std::size_t>(
      env_int("DBSP_AGG_SUBGROUPS", static_cast<std::int64_t>(o.max_subgroups)));
  o.limits.max_intervals = static_cast<std::size_t>(env_int(
      "DBSP_AGG_INTERVALS", static_cast<std::int64_t>(o.limits.max_intervals)));
  o.limits.max_values = static_cast<std::size_t>(
      env_int("DBSP_AGG_VALUES", static_cast<std::int64_t>(o.limits.max_values)));
  o.rescore_threshold = static_cast<std::size_t>(
      env_int("DBSP_AGG_RESCORE", static_cast<std::int64_t>(o.rescore_threshold)));
  return o;
}

SubscriptionAggregator::SubscriptionAggregator(const Schema& schema,
                                               AggregatorOptions options)
    : schema_(&schema), options_(options) {
  if (options_.dimensions == 0) options_.dimensions = 1;
  if (options_.max_subgroups == 0) options_.max_subgroups = 1;
}

SummarySet SubscriptionAggregator::summarize(const Subscription& sub) {
  std::size_t widenings = 0;
  SummarySet set =
      SummarySet::summarize(sub.root(), dims_, *schema_, options_.limits, &widenings);
  summary_widenings_ += widenings;
  return set;
}

void SubscriptionAggregator::set_dimensions(const std::vector<AttributeId>& ranked) {
  dims_ = ranked;
  std::sort(dims_.begin(), dims_.end());
  key_order_.clear();
  key_order_.reserve(ranked.size());
  for (const AttributeId a : ranked) {
    const auto it = std::find(dims_.begin(), dims_.end(), a);
    key_order_.push_back(static_cast<std::size_t>(it - dims_.begin()));
  }
}

std::uint64_t SubscriptionAggregator::signature_of(const SummarySet& set) const {
  for (const std::size_t idx : key_order_) {
    const DimensionSummary& s = set.summaries()[idx];
    // An all-values summary carries no clustering information (at best a
    // presence requirement) — key on the next-ranked dimension instead.
    if (s.all_values()) continue;
    return s.signature(0x51ed2701cbd625a5ULL + dims_[idx].value(), shift_);
  }
  return 0;  // unconstrained on every dimension: the residual subgroup
}

bool SubscriptionAggregator::try_place(Subscription& sub, const SummarySet& set,
                                       std::size_t cap) {
  const std::uint64_t sig = signature_of(set);
  std::size_t g = 0;
  const auto it = by_signature_.find(sig);
  if (it != by_signature_.end()) {
    g = it->second;
  } else if (subgroups_.size() < cap) {
    g = subgroups_.size();
    subgroups_.emplace_back();
    by_signature_.emplace(sig, g);
  } else if (shift_ >= DimensionSummary::kMaxSignatureShift) {
    // The ladder is exhausted (structural shapes alone exceed the cap):
    // fold the residual signatures into existing slots.
    g = static_cast<std::size_t>(sig % subgroups_.size());
  } else {
    return false;
  }
  Subgroup& group = subgroups_[g];
  group.members.push_back(&sub);
  std::size_t widenings = 0;
  (void)group.summary.join(set, options_.limits, &widenings);
  summary_widenings_ += widenings;
  member_subgroup_.emplace(sub.id().value(), g);
  return true;
}

void SubscriptionAggregator::replace_all(const std::vector<Subscription*>& members,
                                         std::size_t cap) {
  for (;;) {
    subgroups_.clear();
    by_signature_.clear();
    member_subgroup_.clear();
    bool fits = true;
    for (Subscription* sub : members) {
      if (!try_place(*sub, summarize(*sub), cap)) {
        // Cap overflow at this shift: coarsen one step and re-cluster.
        // The abort fires within the first cap+1 distinct signatures, so
        // failed passes stay cheap relative to the final full pass.
        ++shift_;
        fits = false;
        break;
      }
    }
    if (fits) break;
  }
  ++full_rebuilds_;
  ++rebuild_generation_;
}

void SubscriptionAggregator::add(Subscription& sub) {
  if (member_subgroup_.find(sub.id().value()) != member_subgroup_.end()) {
    throw std::invalid_argument("aggregator: duplicate subscription id");
  }
  if (dims_.empty()) {
    // Bootstrap the dimension choice from the first arrival; the
    // population-milestone rescore below corrects it as the mix fills in.
    set_dimensions(choose_dimensions({&sub}));
  }
  const SummarySet set = summarize(sub);
  while (!try_place(sub, set, options_.max_subgroups)) {
    // Subgroup cap overflow: coarsen the signature ladder and re-cluster
    // into half the cap, leaving headroom so the O(n) re-cluster amortizes
    // over at least cap/2 future fresh signatures.
    ++shift_;
    replace_all(members_by_id(), std::max<std::size_t>(1, options_.max_subgroups / 2));
  }
  ++mutations_;
  maybe_auto_rescore();
}

void SubscriptionAggregator::remove(SubscriptionId id) {
  const auto it = member_subgroup_.find(id.value());
  if (it == member_subgroup_.end()) {
    throw std::out_of_range("aggregator: unknown subscription id");
  }
  const std::size_t g = it->second;
  Subgroup& group = subgroups_[g];
  const auto member = std::find_if(group.members.begin(), group.members.end(),
                                   [id](const Subscription* s) { return s->id() == id; });
  group.members.erase(member);
  member_subgroup_.erase(it);
  ++mutations_;
  ++group.removals;
  if (group.members.empty() || group.removals >= options_.subgroup_rebuild_removals) {
    rebuild_subgroup(g);
  }
}

void SubscriptionAggregator::refresh(Subscription& sub) {
  const auto it = member_subgroup_.find(sub.id().value());
  if (it == member_subgroup_.end()) {
    throw std::out_of_range("aggregator: refresh of unknown subscription");
  }
  // Pruned trees only generalize, so joining the fresh summary keeps the
  // subgroup sound without re-clustering (membership keys on the
  // admission-time signature).
  std::size_t widenings = 0;
  (void)subgroups_[it->second].summary.join(summarize(sub), options_.limits, &widenings);
  summary_widenings_ += widenings;
}

bool SubscriptionAggregator::contains(SubscriptionId id) const {
  return member_subgroup_.find(id.value()) != member_subgroup_.end();
}

void SubscriptionAggregator::rebuild_subgroup(std::size_t g) {
  Subgroup& group = subgroups_[g];
  std::sort(group.members.begin(), group.members.end(),
            [](const Subscription* a, const Subscription* b) { return a->id() < b->id(); });
  group.summary = SummarySet();
  for (Subscription* sub : group.members) {
    std::size_t widenings = 0;
    (void)group.summary.join(summarize(*sub), options_.limits, &widenings);
    summary_widenings_ += widenings;
  }
  group.removals = 0;
  ++subgroup_rebuilds_;
}

std::vector<Subscription*> SubscriptionAggregator::members_by_id() const {
  std::vector<Subscription*> members;
  members.reserve(member_subgroup_.size());
  for (const Subgroup& group : subgroups_) {
    members.insert(members.end(), group.members.begin(), group.members.end());
  }
  std::sort(members.begin(), members.end(),
            [](const Subscription* a, const Subscription* b) { return a->id() < b->id(); });
  return members;
}

std::vector<AttributeId> SubscriptionAggregator::choose_dimensions(
    const std::vector<Subscription*>& candidates) const {
  // Score every constrained attribute: with trained statistics each leaf
  // contributes 1 - selectivity (the paper's pruning score — rarely
  // fulfilled predicates discriminate best), untrained it contributes 1
  // (pure constraint frequency).
  std::vector<double> score(schema_->attribute_count(), 0.0);
  const bool trained = stats_ != nullptr && stats_->events_observed() > 0;
  for (const Subscription* sub : candidates) {
    sub->root().for_each_leaf([&](const Node& leaf) {
      const Predicate& pred = leaf.predicate();
      const std::size_t a = pred.attribute().value();
      if (a >= score.size()) return;
      double weight = 1.0;
      if (trained) {
        weight = 1.0 - std::clamp(stats_->predicate_selectivity(pred), 0.0, 1.0);
        weight = std::max(weight, 0.05);  // keep frequent attrs in the race
      }
      score[a] += weight;
    });
  }
  std::vector<AttributeId> ranked;
  for (std::size_t a = 0; a < score.size(); ++a) {
    if (score[a] > 0.0) ranked.emplace_back(static_cast<AttributeId::value_type>(a));
  }
  std::sort(ranked.begin(), ranked.end(), [&](AttributeId a, AttributeId b) {
    if (score[a.value()] != score[b.value()]) {
      return score[a.value()] > score[b.value()];
    }
    return a < b;
  });
  if (ranked.size() > options_.dimensions) ranked.resize(options_.dimensions);
  return ranked;
}

void SubscriptionAggregator::rescore() {
  std::vector<Subscription*> members = members_by_id();
  std::vector<AttributeId> ranked = choose_dimensions(members);
  mutations_ = 0;
  std::vector<AttributeId> current;
  current.reserve(key_order_.size());
  for (const std::size_t idx : key_order_) current.push_back(dims_[idx]);
  if (ranked.empty() || ranked == current) {
    return;
  }
  set_dimensions(ranked);
  shift_ = 0;  // fresh dimensions: re-derive the smallest shift that fits
  replace_all(members, options_.max_subgroups);
}

void SubscriptionAggregator::maybe_auto_rescore() {
  if (member_subgroup_.size() < next_auto_rescore_) return;
  next_auto_rescore_ *= 4;
  rescore();
}

void SubscriptionAggregator::train(const EventStats& stats) {
  stats_ = &stats;
  rescore();
}

void SubscriptionAggregator::rebuild() {
  std::vector<Subscription*> members = members_by_id();
  // Clean slate: re-derive the smallest coarsening shift the live
  // population needs, so the result is independent of the churn history.
  shift_ = 0;
  replace_all(members, options_.max_subgroups);
}

void SubscriptionAggregator::match(const Event& event,
                                   std::vector<SubscriptionId>& out) const {
  (void)match_within(event, out, std::numeric_limits<std::size_t>::max());
}

bool SubscriptionAggregator::match_within(const Event& event,
                                          std::vector<SubscriptionId>& out,
                                          std::size_t max_candidates) const {
  // Pass 1 — probe. All subgroups share one dimension choice, so the
  // event's dimension values are resolved once instead of once per
  // subgroup summary.
  std::vector<const Value*> resolved(dims_.size());
  for (std::size_t i = 0; i < dims_.size(); ++i) resolved[i] = event.find(dims_[i]);
  std::vector<std::size_t> admitted;
  std::uint64_t skipped = 0;
  std::size_t candidates = 0;
  for (std::size_t g = 0; g < subgroups_.size(); ++g) {
    const Subgroup& group = subgroups_[g];
    if (group.members.empty()) continue;
    if (!group.summary.admits_resolved(resolved.data())) {
      ++skipped;
      continue;
    }
    admitted.push_back(g);
    candidates += group.members.size();
  }
  events_probed_.fetch_add(1, std::memory_order_relaxed);
  subgroups_admitted_.fetch_add(admitted.size(), std::memory_order_relaxed);
  subgroups_skipped_.fetch_add(skipped, std::memory_order_relaxed);
  if (candidates > max_candidates) {
    // The probe could not prune enough for the candidate path to pay off;
    // the caller routes the event through its exact index instead.
    probe_declines_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  // Pass 2 — exact evaluation of the admitted members only.
  std::uint64_t matched = 0;
  for (const std::size_t g : admitted) {
    for (const Subscription* sub : subgroups_[g].members) {
      if (sub->matches(event)) {
        out.push_back(sub->id());
        ++matched;
      }
    }
  }
  candidates_evaluated_.fetch_add(candidates, std::memory_order_relaxed);
  matches_.fetch_add(matched, std::memory_order_relaxed);
  return true;
}

SubscriptionAggregator::Probe SubscriptionAggregator::probe(const Event& event) const {
  std::vector<const Value*> resolved(dims_.size());
  for (std::size_t i = 0; i < dims_.size(); ++i) resolved[i] = event.find(dims_[i]);
  Probe p;
  for (const Subgroup& group : subgroups_) {
    if (group.members.empty()) continue;
    if (!group.summary.admits_resolved(resolved.data())) continue;
    ++p.admitted;
    p.candidates += group.members.size();
  }
  return p;
}

std::size_t SubscriptionAggregator::subgroup_count() const {
  std::size_t n = 0;
  for (const Subgroup& group : subgroups_) {
    if (!group.members.empty()) ++n;
  }
  return n;
}

const SummarySet* SubscriptionAggregator::subgroup_summary(std::size_t g) const {
  if (g >= subgroups_.size() || subgroups_[g].members.empty()) return nullptr;
  return &subgroups_[g].summary;
}

std::size_t SubscriptionAggregator::subgroup_members(std::size_t g) const {
  return g < subgroups_.size() ? subgroups_[g].members.size() : 0;
}

std::size_t SubscriptionAggregator::subgroup_of(SubscriptionId id) const {
  const auto it = member_subgroup_.find(id.value());
  if (it == member_subgroup_.end()) {
    throw std::out_of_range("aggregator: unknown subscription id");
  }
  return it->second;
}

std::size_t SubscriptionAggregator::advertised_bytes() const {
  std::size_t bytes = 0;
  for (const Subgroup& group : subgroups_) {
    if (!group.members.empty()) bytes += group.summary.wire_size_bytes();
  }
  return bytes;
}

AggregationCounters SubscriptionAggregator::counters() const {
  AggregationCounters c;
  c.events_probed = events_probed_.load(std::memory_order_relaxed);
  c.subgroups_admitted = subgroups_admitted_.load(std::memory_order_relaxed);
  c.subgroups_skipped = subgroups_skipped_.load(std::memory_order_relaxed);
  c.candidates_evaluated = candidates_evaluated_.load(std::memory_order_relaxed);
  c.matches = matches_.load(std::memory_order_relaxed);
  c.probe_declines = probe_declines_.load(std::memory_order_relaxed);
  c.summary_widenings = summary_widenings_;
  c.subgroup_rebuilds = subgroup_rebuilds_;
  c.full_rebuilds = full_rebuilds_;
  return c;
}

void SubscriptionAggregator::reset_counters() {
  events_probed_.store(0, std::memory_order_relaxed);
  subgroups_admitted_.store(0, std::memory_order_relaxed);
  subgroups_skipped_.store(0, std::memory_order_relaxed);
  candidates_evaluated_.store(0, std::memory_order_relaxed);
  matches_.store(0, std::memory_order_relaxed);
  probe_declines_.store(0, std::memory_order_relaxed);
  summary_widenings_ = 0;
  subgroup_rebuilds_ = 0;
  full_rebuilds_ = 0;
}

}  // namespace dbsp::agg
