#pragma once

/// \file
/// Hierarchical subscription aggregation (ROADMAP item 3): clusters
/// similar subscriptions into subgroups keyed by their top-scored pruning
/// dimensions and maintains one bounded SummarySet per subgroup under
/// churn. An event first probes the subgroup summaries and only evaluates
/// the member trees of admitted subgroups — rejects are sound (no false
/// negatives), so delivery stays oracle-exact while match cost and
/// advertisement bytes scale with the number of subgroups, not
/// subscriptions. Dimension choice reuses the paper's selectivity scores
/// (EventStats) with a drift-style rescore trigger mirroring the pruning
/// maintenance machinery.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "agg/summary.hpp"
#include "common/ids.hpp"
#include "event/event.hpp"
#include "event/schema.hpp"
#include "selectivity/stats.hpp"
#include "subscription/subscription.hpp"

namespace dbsp::agg {

/// Construction-time knobs of a SubscriptionAggregator; every field has a
/// DBSP_AGG_* environment override read by from_env().
struct AggregatorOptions {
  /// Number of aggregation dimensions per subgroup key (DBSP_AGG_DIMENSIONS).
  std::size_t dimensions = 3;
  /// Subgroup cap; overflow coarsens the signature quantization and
  /// re-clusters so similar subscriptions merge first (DBSP_AGG_SUBGROUPS).
  std::size_t max_subgroups = 512;
  /// Widening caps of every summary (DBSP_AGG_INTERVALS / DBSP_AGG_VALUES).
  SummaryLimits limits;
  /// Mutations (adds + removes) after which rescore_pending() trips; 0
  /// disables the trigger (DBSP_AGG_RESCORE).
  std::size_t rescore_threshold = 0;
  /// Removals inside one subgroup after which its summary is re-tightened
  /// from the surviving members.
  std::size_t subgroup_rebuild_removals = 8;

  /// Reads the DBSP_AGG_* environment knobs over the defaults.
  [[nodiscard]] static AggregatorOptions from_env();
};

/// Introspection counters. The probe-side fields advance on match();
/// maintenance fields advance under the owner's churn serialization.
struct AggregationCounters {
  std::uint64_t events_probed = 0;
  std::uint64_t subgroups_admitted = 0;
  std::uint64_t subgroups_skipped = 0;
  std::uint64_t candidates_evaluated = 0;
  std::uint64_t matches = 0;
  /// match_within() probes that exceeded their candidate budget (the
  /// caller fell back to its exact index instead).
  std::uint64_t probe_declines = 0;
  std::uint64_t summary_widenings = 0;
  std::uint64_t subgroup_rebuilds = 0;
  std::uint64_t full_rebuilds = 0;
};

/// The aggregation front stage. Subscriptions are clustered by the coarse
/// signature of their per-dimension summaries; each subgroup carries the
/// join of its members' summaries, widened incrementally on add and
/// re-tightened on removal bursts and rebuilds.
///
/// Thread safety: mirrors ShardedEngine — add/remove/refresh/train/rebuild
/// mutate aggregator state and must be externally serialized with each
/// other and with match(); match() itself is const over the subgroup
/// state and may run concurrently with other match() calls (its counters
/// are relaxed atomics). Registered subscriptions must outlive the
/// aggregator (it stores raw pointers, like the matcher layer).
class SubscriptionAggregator {
 public:
  explicit SubscriptionAggregator(const Schema& schema, AggregatorOptions options = {});

  SubscriptionAggregator(const SubscriptionAggregator&) = delete;
  SubscriptionAggregator& operator=(const SubscriptionAggregator&) = delete;

  // --- Churn (externally serialized) --------------------------------------

  /// Registers a subscription: summarizes it over the current dimensions
  /// and joins it into its signature's subgroup. Throws
  /// std::invalid_argument on duplicate ids.
  void add(Subscription& sub);

  /// Unregisters by id; throws std::out_of_range when unknown. A removal
  /// leaves the subgroup summary wide (sound); removal bursts trigger a
  /// subgroup re-tighten.
  void remove(SubscriptionId id);

  /// Re-joins a subscription whose tree changed in place (pruning made it
  /// more general); the subgroup summary widens accordingly.
  void refresh(Subscription& sub);

  [[nodiscard]] bool contains(SubscriptionId id) const;
  [[nodiscard]] std::size_t subscription_count() const { return member_subgroup_.size(); }

  // --- Dimension maintenance ----------------------------------------------

  /// Re-scores aggregation dimensions against trained event statistics
  /// (leaf weight 1 - selectivity; untrained fallback: constraint
  /// frequency) and fully rebuilds the subgroups when the choice changed.
  /// Clears the rescore trigger. `stats` must outlive the aggregator.
  void train(const EventStats& stats);

  /// Mutations since the last rescore crossed the configured threshold —
  /// the aggregation analogue of the pruning drift trigger.
  [[nodiscard]] bool rescore_pending() const {
    return options_.rescore_threshold > 0 && mutations_ >= options_.rescore_threshold;
  }
  void set_rescore_threshold(std::size_t mutations) {
    options_.rescore_threshold = mutations;
  }

  /// Fully re-clusters and re-tightens every subgroup from the live
  /// members (ascending-id order, so the result is independent of the
  /// churn history that led here).
  void rebuild();

  [[nodiscard]] const std::vector<AttributeId>& dimensions() const { return dims_; }

  /// Current signature-coarsening shift (0 = finest). Grows when the
  /// subgroup cap overflows; rebuild()/train() re-derive the smallest
  /// shift that fits the live population.
  [[nodiscard]] unsigned signature_shift() const { return shift_; }

  /// Bumped by every full rebuild (train/rebuild/auto-rescore); overlay
  /// advertisement uses it to detect wholesale subgroup changes.
  [[nodiscard]] std::uint64_t rebuild_generation() const { return rebuild_generation_; }

  // --- Matching (const; concurrent with other const calls) ----------------

  /// Appends the ids of all matching subscriptions to `out` (unsorted —
  /// callers sort, mirroring the shard merge). Exact over the members'
  /// current trees: the summary probe only skips subgroups that provably
  /// cannot match.
  void match(const Event& event, std::vector<SubscriptionId>& out) const;

  /// Budgeted match: probes every subgroup first (dimension values are
  /// resolved once per event) and evaluates the admitted members only when
  /// their total count is at most `max_candidates`. Returns false — with
  /// `out` untouched — when the budget is exceeded, so a cost-based caller
  /// can route the event through its exact index instead of paying a
  /// near-full naive scan. Probe counters always advance; candidate and
  /// match counters only on an accepted probe.
  [[nodiscard]] bool match_within(const Event& event, std::vector<SubscriptionId>& out,
                                  std::size_t max_candidates) const;

  /// Pure probe (no counters): how many subgroups admit the event and how
  /// many member candidates they carry.
  struct Probe {
    std::size_t admitted = 0;
    std::size_t candidates = 0;
  };
  [[nodiscard]] Probe probe(const Event& event) const;

  // --- Introspection -------------------------------------------------------

  /// Non-empty subgroups.
  [[nodiscard]] std::size_t subgroup_count() const;
  /// Allocated subgroup slots (stable indices; some may be empty).
  [[nodiscard]] std::size_t subgroup_slots() const { return subgroups_.size(); }
  /// Summary of subgroup `g`, or nullptr when empty/out of range.
  [[nodiscard]] const SummarySet* subgroup_summary(std::size_t g) const;
  [[nodiscard]] std::size_t subgroup_members(std::size_t g) const;
  /// Subgroup index of a registered subscription; throws std::out_of_range.
  [[nodiscard]] std::size_t subgroup_of(SubscriptionId id) const;

  /// Total advertisement bytes of the non-empty subgroup summaries — the
  /// aggregated routing-table size a broker would flood instead of the
  /// per-subscription trees.
  [[nodiscard]] std::size_t advertised_bytes() const;

  [[nodiscard]] AggregationCounters counters() const;
  void reset_counters();

 private:
  struct Subgroup {
    SummarySet summary;
    std::vector<Subscription*> members;
    std::size_t removals = 0;
  };

  /// Builds the summary of one subscription over the current dimensions,
  /// charging cap widenings to the maintenance counter.
  [[nodiscard]] SummarySet summarize(const Subscription& sub);
  /// Routes a summarized subscription into its subgroup at the current
  /// coarsening shift, bounded by `cap` slots. Returns false when a fresh
  /// signature needs a slot beyond the cap and the shift can still climb
  /// (the caller coarsens and re-clusters); at the terminal shift it folds
  /// by modulo instead, so placement always succeeds there.
  [[nodiscard]] bool try_place(Subscription& sub, const SummarySet& set,
                               std::size_t cap);
  /// Re-clusters `members` from scratch at the current shift, climbing the
  /// shift until at most `cap` subgroups suffice. Counts as a full rebuild.
  void replace_all(const std::vector<Subscription*>& members, std::size_t cap);
  /// Re-tightens one subgroup's summary from its members in id order.
  void rebuild_subgroup(std::size_t g);
  /// Scores every constrained attribute and returns the top dimensions in
  /// score order (desc, id asc tie-break).
  [[nodiscard]] std::vector<AttributeId> choose_dimensions(
      const std::vector<Subscription*>& candidates) const;
  /// Installs a score-ranked dimension choice: dims_ ascending (the
  /// SummarySet layout) plus key_order_ (score-ranked indices into dims_).
  void set_dimensions(const std::vector<AttributeId>& ranked);
  /// Clustering key of one summary set: the signature of the
  /// highest-scored dimension the subscription actually constrains, at the
  /// current coarsening shift. Keying on a single dimension keeps the
  /// distinct-key count near the largest dimension's cardinality instead
  /// of the cross product of all dimensions, so the cap is met without
  /// coarsening the quantization into uselessness.
  [[nodiscard]] std::uint64_t signature_of(const SummarySet& set) const;
  /// Rescores dimensions over the live members; full rebuild when changed.
  void rescore();
  /// Population-milestone rescore (64, 256, 1024, ... members), keeping
  /// the bootstrap dimension choice self-correcting without training.
  void maybe_auto_rescore();
  [[nodiscard]] std::vector<Subscription*> members_by_id() const;

  const Schema* schema_;
  AggregatorOptions options_;
  const EventStats* stats_ = nullptr;
  std::vector<AttributeId> dims_;
  /// Indices into dims_ in score order (best first) — the clustering-key
  /// preference order of signature_of().
  std::vector<std::size_t> key_order_;
  /// Signature-coarsening shift; grows on subgroup-cap overflow so similar
  /// subscriptions merge instead of folding arbitrary signatures together.
  unsigned shift_ = 0;
  std::vector<Subgroup> subgroups_;
  /// First-seen signature (at shift_) -> subgroup slot.
  std::unordered_map<std::uint64_t, std::size_t> by_signature_;
  std::unordered_map<SubscriptionId::value_type, std::size_t> member_subgroup_;
  std::size_t mutations_ = 0;
  std::uint64_t rebuild_generation_ = 0;
  std::size_t next_auto_rescore_ = 64;

  // Maintenance-side counters (externally serialized with churn).
  std::uint64_t summary_widenings_ = 0;
  std::uint64_t subgroup_rebuilds_ = 0;
  std::uint64_t full_rebuilds_ = 0;
  // Probe-side counters (relaxed atomics; match() is const).
  mutable std::atomic<std::uint64_t> events_probed_{0};
  mutable std::atomic<std::uint64_t> subgroups_admitted_{0};
  mutable std::atomic<std::uint64_t> subgroups_skipped_{0};
  mutable std::atomic<std::uint64_t> candidates_evaluated_{0};
  mutable std::atomic<std::uint64_t> matches_{0};
  mutable std::atomic<std::uint64_t> probe_declines_{0};
};

}  // namespace dbsp::agg
