#pragma once

/// \file
/// Per-dimension subscription summaries — the aggregation substrate of the
/// subgrouping layer (src/agg/). A DimensionSummary is a sound
/// over-approximation of one attribute's projection of a filter tree's
/// admitted-event set: numeric attributes summarize to a bounded union of
/// closed intervals, categorical attributes to a bounded value set that
/// widens to "any value" when it overflows. A SummarySet bundles one
/// summary per aggregation dimension; `admits(event) == false` proves that
/// no subscription behind the summary can match the event (rejects are
/// exact, admissions may be false positives).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/ids.hpp"
#include "event/event.hpp"
#include "event/schema.hpp"
#include "event/value.hpp"
#include "subscription/node.hpp"

namespace dbsp::agg {

/// Widening caps: the bounded-size knobs of every summary. Smaller caps
/// mean smaller advertisements and cheaper probes but looser summaries
/// (more false-positive admissions).
struct SummaryLimits {
  /// Maximum interval segments of a numeric summary; overflow merges the
  /// segments separated by the smallest gaps.
  std::size_t max_intervals = 4;
  /// Maximum distinct values of a categorical summary; overflow widens the
  /// whole dimension to "any value".
  std::size_t max_values = 16;
};

/// Summary of one attribute dimension. Semantics: for every event the
/// summarized tree matches, (a) if the event lacks the attribute then
/// `may_match_without` is true, and (b) if the event carries the attribute
/// then the value lies in the summarized set. Building keeps this invariant
/// through And (intersection), Or (union) and Not (widen to universe), so
/// a failed `admits_value` check is always a sound reject.
class DimensionSummary {
 public:
  /// One closed segment [lo, hi] of a numeric summary; infinities encode
  /// half-lines (Lt/Le/Gt/Ge leaves).
  struct Interval {
    double lo;
    double hi;
  };

  /// The unconstrained summary: admits any value and absence.
  [[nodiscard]] static DimensionSummary universe(bool numeric);
  /// The empty summary: admits nothing (an unsatisfiable constraint).
  [[nodiscard]] static DimensionSummary none(bool numeric);
  /// Assembles a summary from raw parts, normalizing the payload (interval
  /// sort+merge / value sort+dedup). Building block of the leaf rules.
  [[nodiscard]] static DimensionSummary from_parts(bool numeric, bool may_match_without,
                                                   bool all_values,
                                                   std::vector<Interval> intervals,
                                                   std::vector<Value> values);

  /// Builds the summary of `tree` projected onto `attr`. `numeric` is the
  /// schema's verdict on the attribute (Int/Double → interval form).
  /// Cap-triggered widenings are counted into `*widenings` when non-null.
  [[nodiscard]] static DimensionSummary summarize(const Node& tree, AttributeId attr,
                                                  bool numeric,
                                                  const SummaryLimits& limits,
                                                  std::size_t* widenings);

  /// Union: admits everything either side admits. Widening caps apply.
  [[nodiscard]] static DimensionSummary join(const DimensionSummary& a,
                                             const DimensionSummary& b,
                                             const SummaryLimits& limits,
                                             std::size_t* widenings);
  /// Intersection: admits only what both sides admit.
  [[nodiscard]] static DimensionSummary meet(const DimensionSummary& a,
                                             const DimensionSummary& b);

  /// True when the summary admits an event carrying `value` on this
  /// dimension. A reject is exact; an admission may be a false positive.
  [[nodiscard]] bool admits_value(const Value& value) const;
  /// True when the summary admits an event lacking the attribute.
  [[nodiscard]] bool may_match_without() const { return may_match_without_; }

  [[nodiscard]] bool numeric() const { return numeric_; }
  /// True when any present value is admitted (the widened-out state).
  [[nodiscard]] bool all_values() const { return all_values_; }
  [[nodiscard]] bool unconstrained() const { return all_values_ && may_match_without_; }
  [[nodiscard]] const std::vector<Interval>& intervals() const { return intervals_; }
  [[nodiscard]] const std::vector<Value>& values() const { return values_; }

  [[nodiscard]] bool equals(const DimensionSummary& other) const;

  /// Deterministic advertisement size in bytes (flags + segment/value
  /// payload) — what the overlay's byte accounting charges per dimension.
  [[nodiscard]] std::size_t wire_size_bytes() const;

  /// Mixes the summary's shape into `seed`: numeric dimensions contribute
  /// a shape class (half-line vs bounded) plus one coarsely quantized
  /// representative point, categorical dimensions a hash bucket per value,
  /// so similar (not only identical) constraints land in the
  /// same subgroup. `shift` coarsens the quantization further — each step
  /// roughly doubles the bucket widths (numeric: mantissa then exponent
  /// bits drop; categorical: hash-bucket count halves) — so a clusterer
  /// that overflows its subgroup cap can climb shifts until similar
  /// subscriptions merge instead of folding arbitrary ones together.
  [[nodiscard]] std::uint64_t signature(std::uint64_t seed, unsigned shift = 0) const;

  /// Shift beyond which signature() is fully converged (one bucket per
  /// structural shape); climbing further cannot merge anything else.
  static constexpr unsigned kMaxSignatureShift = 32;

 private:
  explicit DimensionSummary(bool numeric) : numeric_(numeric) {}

  void enforce_caps(const SummaryLimits& limits, std::size_t* widenings);

  bool numeric_;
  bool may_match_without_ = false;
  bool all_values_ = false;
  /// Sorted, pairwise-disjoint segments (numeric form, all_values_ off).
  std::vector<Interval> intervals_;
  /// Sorted by Value::key_less, deduplicated (categorical form).
  std::vector<Value> values_;
};

/// One summary per aggregation dimension (parallel vectors, dimensions in
/// ascending attribute order). The subgroup advertisement unit: a broker
/// routes an event toward a summary set only when every dimension admits
/// it.
class SummarySet {
 public:
  SummarySet() = default;

  /// Builds the per-dimension summaries of `tree` over `dims` (ascending
  /// attribute ids; the caller's aggregation-dimension choice).
  [[nodiscard]] static SummarySet summarize(const Node& tree,
                                            const std::vector<AttributeId>& dims,
                                            const Schema& schema,
                                            const SummaryLimits& limits,
                                            std::size_t* widenings);

  /// Widens this set to also admit everything `other` admits. Returns true
  /// when the set changed (the overlay re-advertises only then).
  bool join(const SummarySet& other, const SummaryLimits& limits,
            std::size_t* widenings);

  /// True when every dimension admits the event; false proves no member
  /// subscription matches it.
  [[nodiscard]] bool admits(const Event& event) const;

  /// admits() over pre-resolved dimension values: `values[i]` is the
  /// event's value on dimension i, nullptr when absent. Lets a probe over
  /// many sets sharing one dimension choice pay the event lookups once.
  [[nodiscard]] bool admits_resolved(const Value* const* values) const;

  [[nodiscard]] const std::vector<AttributeId>& dimensions() const { return dims_; }
  [[nodiscard]] const std::vector<DimensionSummary>& summaries() const {
    return summaries_;
  }

  [[nodiscard]] bool equals(const SummarySet& other) const;

  /// Deterministic advertisement size in bytes: per-set header plus the
  /// per-dimension payloads.
  [[nodiscard]] std::size_t wire_size_bytes() const;

  /// Clustering key: subscriptions whose summaries hash alike share a
  /// subgroup. Coarse by construction and coarsened further by `shift`
  /// (see DimensionSummary::signature).
  [[nodiscard]] std::uint64_t signature(unsigned shift = 0) const;

 private:
  std::vector<AttributeId> dims_;
  std::vector<DimensionSummary> summaries_;
};

}  // namespace dbsp::agg
