#include "agg/summary.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

namespace dbsp::agg {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Categorical summaries store numeric values canonicalized to Double so
/// that cross-type numeric equality (Int 5 == Double 5.0) collapses to key
/// equality — required for sound set intersection and membership tests.
Value canonical(const Value& v) { return v.is_numeric() ? Value(v.numeric()) : v; }

bool key_less_fn(const Value& a, const Value& b) { return a.key_less(b); }

/// Sorts by lo and merges overlapping segments in place.
void normalize(std::vector<DimensionSummary::Interval>& intervals) {
  std::sort(intervals.begin(), intervals.end(),
            [](const DimensionSummary::Interval& a, const DimensionSummary::Interval& b) {
              return a.lo < b.lo;
            });
  std::size_t out = 0;
  for (std::size_t i = 0; i < intervals.size(); ++i) {
    if (out > 0 && intervals[i].lo <= intervals[out - 1].hi) {
      intervals[out - 1].hi = std::max(intervals[out - 1].hi, intervals[i].hi);
    } else {
      intervals[out++] = intervals[i];
    }
  }
  intervals.resize(out);
}

/// Coarse bucket of a numeric endpoint for subgroup signatures: sign,
/// binary exponent and the top three mantissa bits. Values within ~12% of
/// each other usually share a bucket, so near-identical range constraints
/// cluster together. `shift` coarsens the bucket ladder one power of two
/// per step: shifts 1-3 drop the mantissa bits, further shifts drop low
/// exponent bits, and at kMaxSignatureShift every endpoint shares one
/// bucket.
std::uint64_t quantize(double x, unsigned shift) {
  if (shift >= DimensionSummary::kMaxSignatureShift) return 1;
  if (x == 0.0) return 1;
  if (std::isinf(x)) return x > 0 ? 2 : 3;
  if (std::isnan(x)) return 4;
  int exp = 0;
  const double mantissa = std::frexp(std::abs(x), &exp);  // [0.5, 1)
  auto top = static_cast<std::uint64_t>((mantissa - 0.5) * 16.0);  // 0..7
  top >>= std::min(shift, 3U);
  auto biased = static_cast<std::uint64_t>(exp + 4096);
  if (shift > 3) biased >>= std::min(shift - 3, 13U);
  return (x < 0 ? 1ULL : 0ULL) | (biased << 1) | (top << 14) | (1ULL << 17);
}

/// Hash bucket of a categorical value for subgroup signatures: 4096
/// buckets at shift 0 (distinct values rarely collide), halving per shift
/// so high-cardinality attributes merge consistently — the same value
/// always lands in the same bucket, so co-clustered subscriptions stay
/// similar as the ladder coarsens.
std::uint64_t bucket_of(const Value& v, unsigned shift) {
  constexpr unsigned kBucketBits = 12;
  const unsigned bits = shift < kBucketBits ? kBucketBits - shift : 0;
  return v.hash() & ((1ULL << bits) - 1ULL);
}

void mix(std::uint64_t& h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6U) + (h >> 2U);
}

}  // namespace

DimensionSummary DimensionSummary::universe(bool numeric) {
  DimensionSummary s(numeric);
  s.may_match_without_ = true;
  s.all_values_ = true;
  return s;
}

DimensionSummary DimensionSummary::none(bool numeric) {
  return DimensionSummary(numeric);
}

namespace {

/// Leaf summary for a predicate on the summarized attribute itself: a
/// matching event must carry the attribute with a value the predicate can
/// accept. Operand/representation mismatches widen to all-values — sound,
/// and they only arise from predicates typed against the schema's grain.
DimensionSummary summarize_leaf(const Predicate& pred, bool numeric) {
  std::vector<DimensionSummary::Interval> intervals;
  std::vector<Value> values;
  bool all = false;
  const std::vector<Value>& ops = pred.operands();
  const bool ops_numeric =
      std::all_of(ops.begin(), ops.end(), [](const Value& v) { return v.is_numeric(); });
  if (numeric) {
    switch (pred.op()) {
      case Op::Eq:
        if (ops_numeric) {
          intervals.push_back({pred.operand().numeric(), pred.operand().numeric()});
        } else {
          all = true;
        }
        break;
      case Op::Lt:
      case Op::Le:
        if (ops_numeric) {
          intervals.push_back({-kInf, pred.operand().numeric()});
        } else {
          all = true;
        }
        break;
      case Op::Gt:
      case Op::Ge:
        if (ops_numeric) {
          intervals.push_back({pred.operand().numeric(), kInf});
        } else {
          all = true;
        }
        break;
      case Op::Between:
        if (ops_numeric && ops.size() == 2) {
          intervals.push_back({ops[0].numeric(), ops[1].numeric()});
        } else {
          all = true;
        }
        break;
      case Op::In:
        if (ops_numeric) {
          for (const Value& v : ops) intervals.push_back({v.numeric(), v.numeric()});
        } else {
          all = true;
        }
        break;
      case Op::Ne:
      case Op::Prefix:
      case Op::Suffix:
      case Op::Contains:
        // Ne admits everything but one point; the string operators admit
        // unbounded value families. All widen to "any present value".
        all = true;
        break;
    }
  } else {
    switch (pred.op()) {
      case Op::Eq:
        values.push_back(canonical(pred.operand()));
        break;
      case Op::In:
        for (const Value& v : ops) values.push_back(canonical(v));
        break;
      default:
        // Ranges over strings, Ne and the substring operators admit value
        // families a bounded set cannot carry.
        all = true;
        break;
    }
  }
  return DimensionSummary::from_parts(numeric, /*may_match_without=*/false, all,
                                      std::move(intervals), std::move(values));
}

}  // namespace

DimensionSummary DimensionSummary::from_parts(bool numeric, bool may_match_without,
                                              bool all_values,
                                              std::vector<Interval> intervals,
                                              std::vector<Value> values) {
  DimensionSummary s(numeric);
  s.may_match_without_ = may_match_without;
  s.all_values_ = all_values;
  if (!all_values) {
    if (numeric) {
      normalize(intervals);
      s.intervals_ = std::move(intervals);
    } else {
      std::sort(values.begin(), values.end(), key_less_fn);
      values.erase(std::unique(values.begin(), values.end(),
                               [](const Value& a, const Value& b) { return a.equals(b); }),
                   values.end());
      s.values_ = std::move(values);
    }
  }
  return s;
}

DimensionSummary DimensionSummary::summarize(const Node& tree, AttributeId attr,
                                             bool numeric, const SummaryLimits& limits,
                                             std::size_t* widenings) {
  DimensionSummary result = [&]() -> DimensionSummary {
    switch (tree.kind()) {
      case NodeKind::Leaf: {
        const Predicate& pred = tree.predicate();
        if (pred.attribute() != attr) return universe(numeric);
        DimensionSummary s = summarize_leaf(pred, numeric);
        s.enforce_caps(limits, widenings);
        return s;
      }
      case NodeKind::And: {
        DimensionSummary s = universe(numeric);
        for (const auto& child : tree.children()) {
          s = meet(s, summarize(*child, attr, numeric, limits, widenings));
        }
        return s;
      }
      case NodeKind::Or: {
        DimensionSummary s = none(numeric);
        for (const auto& child : tree.children()) {
          s = join(s, summarize(*child, attr, numeric, limits, widenings), limits,
                   widenings);
        }
        return s;
      }
      case NodeKind::Not:
        // Events matching Not(x) are unconstrained on any dimension x
        // constrains — the complement of an interval union is not
        // representable, so widen to the universe (sound).
        return universe(numeric);
      case NodeKind::True:
        return universe(numeric);
      case NodeKind::False:
        return none(numeric);
    }
    return universe(numeric);
  }();
  result.enforce_caps(limits, widenings);
  return result;
}

DimensionSummary DimensionSummary::join(const DimensionSummary& a,
                                        const DimensionSummary& b,
                                        const SummaryLimits& limits,
                                        std::size_t* widenings) {
  DimensionSummary r(a.numeric_);
  r.may_match_without_ = a.may_match_without_ || b.may_match_without_;
  if (a.all_values_ || b.all_values_) {
    r.all_values_ = true;
    return r;
  }
  if (a.numeric_) {
    r.intervals_ = a.intervals_;
    r.intervals_.insert(r.intervals_.end(), b.intervals_.begin(), b.intervals_.end());
    normalize(r.intervals_);
  } else {
    r.values_.reserve(a.values_.size() + b.values_.size());
    std::set_union(a.values_.begin(), a.values_.end(), b.values_.begin(),
                   b.values_.end(), std::back_inserter(r.values_), key_less_fn);
  }
  r.enforce_caps(limits, widenings);
  return r;
}

DimensionSummary DimensionSummary::meet(const DimensionSummary& a,
                                        const DimensionSummary& b) {
  DimensionSummary r(a.numeric_);
  r.may_match_without_ = a.may_match_without_ && b.may_match_without_;
  if (a.all_values_) {
    r.all_values_ = b.all_values_;
    r.intervals_ = b.intervals_;
    r.values_ = b.values_;
    return r;
  }
  if (b.all_values_) {
    r.all_values_ = false;
    r.intervals_ = a.intervals_;
    r.values_ = a.values_;
    return r;
  }
  if (a.numeric_) {
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < a.intervals_.size() && j < b.intervals_.size()) {
      const double lo = std::max(a.intervals_[i].lo, b.intervals_[j].lo);
      const double hi = std::min(a.intervals_[i].hi, b.intervals_[j].hi);
      if (lo <= hi) r.intervals_.push_back({lo, hi});
      if (a.intervals_[i].hi < b.intervals_[j].hi) {
        ++i;
      } else {
        ++j;
      }
    }
  } else {
    std::set_intersection(a.values_.begin(), a.values_.end(), b.values_.begin(),
                          b.values_.end(), std::back_inserter(r.values_), key_less_fn);
  }
  return r;
}

void DimensionSummary::enforce_caps(const SummaryLimits& limits,
                                    std::size_t* widenings) {
  if (all_values_) {
    intervals_.clear();
    values_.clear();
    return;
  }
  if (numeric_) {
    const std::size_t cap = std::max<std::size_t>(1, limits.max_intervals);
    while (intervals_.size() > cap) {
      // Merge the two segments separated by the smallest gap — the merge
      // that admits the fewest extra values.
      std::size_t best = 0;
      double best_gap = kInf;
      for (std::size_t i = 0; i + 1 < intervals_.size(); ++i) {
        const double gap = intervals_[i + 1].lo - intervals_[i].hi;
        if (gap < best_gap) {
          best_gap = gap;
          best = i;
        }
      }
      intervals_[best].hi = intervals_[best + 1].hi;
      intervals_.erase(intervals_.begin() + static_cast<std::ptrdiff_t>(best) + 1);
      if (widenings != nullptr) ++*widenings;
    }
  } else if (values_.size() > limits.max_values) {
    all_values_ = true;
    values_.clear();
    if (widenings != nullptr) ++*widenings;
  }
}

bool DimensionSummary::admits_value(const Value& value) const {
  if (all_values_) return true;
  if (numeric_) {
    // all_values_ off means every disjunct carries a numeric range
    // constraint, which only numeric event values can satisfy.
    if (!value.is_numeric()) return false;
    const double x = value.numeric();
    auto it = std::upper_bound(
        intervals_.begin(), intervals_.end(), x,
        [](double v, const Interval& iv) { return v < iv.lo; });
    if (it == intervals_.begin()) return false;
    --it;
    return x <= it->hi;
  }
  return std::binary_search(values_.begin(), values_.end(), canonical(value),
                            key_less_fn);
}

bool DimensionSummary::equals(const DimensionSummary& other) const {
  if (numeric_ != other.numeric_ || may_match_without_ != other.may_match_without_ ||
      all_values_ != other.all_values_) {
    return false;
  }
  if (all_values_) return true;
  if (numeric_) {
    return intervals_.size() == other.intervals_.size() &&
           std::equal(intervals_.begin(), intervals_.end(), other.intervals_.begin(),
                      [](const Interval& a, const Interval& b) {
                        return a.lo == b.lo && a.hi == b.hi;
                      });
  }
  return values_.size() == other.values_.size() &&
         std::equal(values_.begin(), values_.end(), other.values_.begin(),
                    [](const Value& a, const Value& b) { return a.equals(b); });
}

std::size_t DimensionSummary::wire_size_bytes() const {
  // flags byte + segment/value count.
  std::size_t bytes = 1 + 2;
  if (all_values_) return bytes;
  if (numeric_) return bytes + 16 * intervals_.size();
  for (const Value& v : values_) bytes += v.size_bytes();
  return bytes;
}

std::uint64_t DimensionSummary::signature(std::uint64_t seed, unsigned shift) const {
  std::uint64_t h = seed;
  mix(h, (may_match_without_ ? 1ULL : 0ULL) | (all_values_ ? 2ULL : 0ULL));
  if (all_values_) return h;
  if (numeric_) {
    // One representative bucket per dimension, not per endpoint: keying on
    // every endpoint would square the per-dimension signature cardinality
    // and force a clusterer into uselessly coarse shifts before the
    // distinct-signature count fits its subgroup cap. The shape class
    // keeps half-lines apart from bounded ranges (joining "< a" with
    // "> b" would widen a subgroup to nearly the whole axis).
    if (intervals_.empty()) {
      mix(h, 5);  // unsatisfiable
      return h;
    }
    const double lo = intervals_.front().lo;
    const double hi = intervals_.back().hi;
    const bool lo_open = std::isinf(lo);
    const bool hi_open = std::isinf(hi);
    mix(h, (lo_open ? 1ULL : 0ULL) | (hi_open ? 2ULL : 0ULL));
    if (!lo_open || !hi_open) {
      const double rep = lo_open ? hi : (hi_open ? lo : 0.5 * (lo + hi));
      mix(h, quantize(rep, shift));
    }
  } else {
    // One representative bucket per value set (the sorted-first value),
    // mirroring the numeric rule: mixing every member of an In/Or set
    // would make the distinct-key count combinatorial in the set contents.
    // Sets sharing their first value co-cluster and their join stays a
    // small concrete set under the value cap.
    if (!values_.empty()) mix(h, bucket_of(values_.front(), shift));
  }
  return h;
}

SummarySet SummarySet::summarize(const Node& tree, const std::vector<AttributeId>& dims,
                                 const Schema& schema, const SummaryLimits& limits,
                                 std::size_t* widenings) {
  SummarySet set;
  set.dims_ = dims;
  set.summaries_.reserve(dims.size());
  for (const AttributeId dim : dims) {
    const ValueType type = schema.type(dim);
    const bool numeric = type == ValueType::Int || type == ValueType::Double;
    set.summaries_.push_back(
        DimensionSummary::summarize(tree, dim, numeric, limits, widenings));
  }
  return set;
}

bool SummarySet::join(const SummarySet& other, const SummaryLimits& limits,
                      std::size_t* widenings) {
  if (dims_.empty()) {
    const bool changed = !other.dims_.empty();
    *this = other;
    return changed;
  }
  if (dims_ != other.dims_) {
    throw std::logic_error("summary set: join across different dimension sets");
  }
  bool changed = false;
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    DimensionSummary joined =
        DimensionSummary::join(summaries_[i], other.summaries_[i], limits, widenings);
    if (!joined.equals(summaries_[i])) {
      summaries_[i] = std::move(joined);
      changed = true;
    }
  }
  return changed;
}

bool SummarySet::admits(const Event& event) const {
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    const Value* value = event.find(dims_[i]);
    if (value == nullptr) {
      if (!summaries_[i].may_match_without()) return false;
    } else if (!summaries_[i].admits_value(*value)) {
      return false;
    }
  }
  return true;
}

bool SummarySet::admits_resolved(const Value* const* values) const {
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    const Value* value = values[i];
    if (value == nullptr) {
      if (!summaries_[i].may_match_without()) return false;
    } else if (!summaries_[i].admits_value(*value)) {
      return false;
    }
  }
  return true;
}

bool SummarySet::equals(const SummarySet& other) const {
  if (dims_ != other.dims_) return false;
  for (std::size_t i = 0; i < summaries_.size(); ++i) {
    if (!summaries_[i].equals(other.summaries_[i])) return false;
  }
  return true;
}

std::size_t SummarySet::wire_size_bytes() const {
  // set header (dimension count) + per-dimension attribute id + payload.
  std::size_t bytes = 2;
  for (const DimensionSummary& s : summaries_) bytes += 4 + s.wire_size_bytes();
  return bytes;
}

std::uint64_t SummarySet::signature(unsigned shift) const {
  std::uint64_t h = 0x51ed2701cbd625a5ULL;
  for (std::size_t i = 0; i < dims_.size(); ++i) {
    mix(h, dims_[i].value());
    h = summaries_[i].signature(h, shift);
  }
  return h;
}

}  // namespace dbsp::agg
