#pragma once

/// \file
/// The fluent, schema-checked filter builder of the public API. A `Filter`
/// is an immutable value describing a Boolean subscription expression over
/// *named* attributes:
///
///   Filter f = (where("price").gt(100) && where("sym").eq("ACME"))
///              || where("volume").ge(1e6);
///
/// Filters are cheap to copy (shared immutable nodes) and schema-free
/// until compile(): compiling resolves names against a Schema, type-checks
/// every predicate, and produces the same simplified `Node` tree the DSL
/// parser would — `to_string()` renders the equivalent DSL text, and
/// `parse_subscription(f.to_string(), schema)` yields a semantically equal
/// tree (enforced by a randomized round-trip test).

#include <memory>
#include <string>
#include <vector>

#include "api/status.hpp"
#include "event/schema.hpp"
#include "event/value.hpp"
#include "subscription/node.hpp"

namespace dbsp {

namespace api_detail {
struct FilterNode;
}  // namespace api_detail

/// An immutable Boolean filter expression over named attributes. Compose
/// with `&&`, `||`, `!` or the `all_of`/`any_of`/`not_of` free functions;
/// leaves come from `where("attr").<op>(...)`. A default-constructed
/// Filter is empty and fails compile() with kInvalidArgument; composing
/// with an empty Filter propagates emptiness.
class Filter {
 public:
  Filter() = default;

  /// True when this holds an expression (leaves and composites of leaves).
  [[nodiscard]] bool valid() const { return node_ != nullptr; }

  /// Compiles against `schema`: resolves attribute names, type-checks each
  /// predicate (numeric ops need numeric attributes and operands, string
  /// ops string ones, Bool supports =/!=/in only), simplifies, and returns
  /// the constant-free tree — or a kInvalidArgument/kNotFound Status.
  [[nodiscard]] Result<std::unique_ptr<Node>> compile(const Schema& schema) const;

  /// Renders the expression in the subscription DSL (subscription/parser.hpp)
  /// with explicit parentheses and SQL-style '' escaping inside string
  /// literals. Attribute names must be DSL identifiers ([A-Za-z_][A-Za-z0-9_]*,
  /// not a keyword) and doubles finite for the text to parse back.
  [[nodiscard]] std::string to_string() const;

  friend Filter operator&&(const Filter& a, const Filter& b);
  friend Filter operator||(const Filter& a, const Filter& b);
  friend Filter operator!(const Filter& a);

 private:
  friend class AttributeRef;
  friend Filter all_of(std::vector<Filter> parts);
  friend Filter any_of(std::vector<Filter> parts);

  explicit Filter(std::shared_ptr<const api_detail::FilterNode> node)
      : node_(std::move(node)) {}

  std::shared_ptr<const api_detail::FilterNode> node_;
};

/// One attribute named in a filter under construction; the result of
/// where(). Each method yields a single-predicate Filter.
class AttributeRef {
 public:
  explicit AttributeRef(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] Filter eq(Value v) const;        ///< attribute == v
  [[nodiscard]] Filter ne(Value v) const;        ///< attribute != v (and present)
  [[nodiscard]] Filter lt(Value v) const;        ///< attribute <  v
  [[nodiscard]] Filter le(Value v) const;        ///< attribute <= v
  [[nodiscard]] Filter gt(Value v) const;        ///< attribute >  v
  [[nodiscard]] Filter ge(Value v) const;        ///< attribute >= v
  [[nodiscard]] Filter between(Value low, Value high) const;
  [[nodiscard]] Filter in(std::vector<Value> values) const;
  [[nodiscard]] Filter prefix(std::string text) const;
  [[nodiscard]] Filter suffix(std::string text) const;
  [[nodiscard]] Filter contains(std::string text) const;

  [[nodiscard]] const std::string& name() const { return name_; }

 private:
  [[nodiscard]] Filter leaf(Op op, std::vector<Value> operands) const;

  std::string name_;
};

/// Entry point of the fluent builder: where("price").gt(100).
[[nodiscard]] inline AttributeRef where(std::string attribute) {
  return AttributeRef(std::move(attribute));
}

/// Conjunction of all parts (n-ary And). One part returns that part;
/// an empty vector yields a Filter that fails compile().
[[nodiscard]] Filter all_of(std::vector<Filter> parts);
/// Disjunction of any part (n-ary Or); same edge-case rules as all_of.
[[nodiscard]] Filter any_of(std::vector<Filter> parts);
/// Negation; equivalent to !f.
[[nodiscard]] Filter not_of(Filter f);

}  // namespace dbsp
