#include "api/filter.hpp"

#include <charconv>
#include <sstream>
#include <utility>

namespace dbsp {

namespace api_detail {

/// The builder's private expression node. Leaves keep the attribute *name*
/// (resolution is deferred to compile()) plus the raw operand list exactly
/// as written — normalization (Between swap, In sort/dedup) happens in the
/// Predicate constructor on both the compile and the parse path, which is
/// what makes the two converge.
struct FilterNode {
  enum class Kind : std::uint8_t { Leaf, And, Or, Not };

  Kind kind = Kind::Leaf;
  std::string attribute;        // Leaf
  Op op = Op::Eq;               // Leaf
  std::vector<Value> operands;  // Leaf
  std::vector<std::shared_ptr<const FilterNode>> children;  // And/Or/Not
};

}  // namespace api_detail

namespace {

using api_detail::FilterNode;

std::shared_ptr<const FilterNode> make_composite(
    FilterNode::Kind kind, std::vector<std::shared_ptr<const FilterNode>> children) {
  auto node = std::make_shared<FilterNode>();
  node->kind = kind;
  node->children = std::move(children);
  return node;
}

/// Number of operands each operator requires in a well-formed leaf;
/// 0 = "one or more" (In).
[[nodiscard]] bool operand_count_ok(Op op, std::size_t n) {
  switch (op) {
    case Op::Between: return n == 2;
    case Op::In: return n >= 1;
    default: return n == 1;
  }
}

/// Type compatibility of one operand against the attribute's declared
/// type. Int and Double interchange (matching compares numerically).
[[nodiscard]] bool operand_type_ok(ValueType attr_type, const Value& v) {
  switch (attr_type) {
    case ValueType::Int:
    case ValueType::Double: return v.is_numeric();
    case ValueType::String: return v.type() == ValueType::String;
    case ValueType::Bool: return v.type() == ValueType::Bool;
  }
  return false;
}

/// Operator applicability per attribute type: string operators need a
/// string attribute; Bool supports equality and set membership only.
[[nodiscard]] bool op_type_ok(ValueType attr_type, Op op) {
  switch (op) {
    case Op::Prefix:
    case Op::Suffix:
    case Op::Contains: return attr_type == ValueType::String;
    case Op::Lt:
    case Op::Le:
    case Op::Gt:
    case Op::Ge:
    case Op::Between: return attr_type != ValueType::Bool;
    case Op::Eq:
    case Op::Ne:
    case Op::In: return true;
  }
  return false;
}

Result<std::unique_ptr<Node>> compile_node(const FilterNode& node, const Schema& schema) {
  switch (node.kind) {
    case FilterNode::Kind::Leaf: {
      const auto attr = schema.find(node.attribute);
      if (!attr) {
        return Status::error(ErrorCode::kNotFound,
                             "unknown attribute '" + node.attribute + "'");
      }
      if (!operand_count_ok(node.op, node.operands.size())) {
        return Status::error(ErrorCode::kInvalidArgument,
                             "wrong operand count for '" + node.attribute + "' " +
                                 dbsp::to_string(node.op));
      }
      const ValueType attr_type = schema.type(*attr);
      if (!op_type_ok(attr_type, node.op)) {
        return Status::error(ErrorCode::kInvalidArgument,
                             std::string("operator '") + dbsp::to_string(node.op) +
                                 "' does not apply to attribute '" + node.attribute + "'");
      }
      for (const Value& v : node.operands) {
        if (!operand_type_ok(attr_type, v)) {
          return Status::error(ErrorCode::kInvalidArgument,
                               "operand " + v.to_string() + " has the wrong type for '" +
                                   node.attribute + "'");
        }
      }
      if (node.op == Op::Between) {
        return Node::leaf(Predicate(*attr, node.operands[0], node.operands[1]));
      }
      if (node.op == Op::In) {
        return Node::leaf(Predicate(*attr, node.operands));
      }
      return Node::leaf(Predicate(*attr, node.op, node.operands[0]));
    }
    case FilterNode::Kind::Not: {
      auto child = compile_node(*node.children[0], schema);
      if (!child.ok()) return child.status();
      return Node::not_(std::move(child).value());
    }
    case FilterNode::Kind::And:
    case FilterNode::Kind::Or: {
      if (node.children.empty()) {
        // Only the zero-part case reaches a composite here: all_of/any_of
        // with one part collapse to that part at build time.
        return Status::error(ErrorCode::kInvalidArgument,
                             "all_of/any_of over an empty set of parts");
      }
      std::vector<std::unique_ptr<Node>> children;
      children.reserve(node.children.size());
      for (const auto& c : node.children) {
        auto child = compile_node(*c, schema);
        if (!child.ok()) return child.status();
        children.push_back(std::move(child).value());
      }
      return node.kind == FilterNode::Kind::And ? Node::and_(std::move(children))
                                                : Node::or_(std::move(children));
    }
  }
  return Status::error(ErrorCode::kInvalidArgument, "malformed filter node");
}

/// A double literal that re-parses as a Double: shortest round-trip form,
/// forced to carry '.'/'e' so the DSL lexer does not read it as an Int.
/// (Int(x) and Double(x) compare numerically equal anyway; this just keeps
/// the round-tripped operand the same ValueType.)
std::string double_literal(double d) {
  char buf[64];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), d);
  std::string out(buf, end);
  (void)ec;
  if (out.find_first_of(".eE") == std::string::npos &&
      out.find_first_not_of("-0123456789") == std::string::npos) {
    out += ".0";
  }
  return out;
}

/// A DSL string literal: single quotes, inner quotes doubled (SQL style —
/// the lexer's matching escape).
std::string string_literal(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('\'');
  for (const char c : s) {
    if (c == '\'') out.push_back('\'');
    out.push_back(c);
  }
  out.push_back('\'');
  return out;
}

std::string value_literal(const Value& v) {
  switch (v.type()) {
    case ValueType::Int: return std::to_string(v.as_int());
    case ValueType::Double: return double_literal(v.as_double());
    case ValueType::String: return string_literal(v.as_string());
    case ValueType::Bool: return v.as_bool() ? "true" : "false";
  }
  return "?";
}

void render(const FilterNode& node, std::ostringstream& os) {
  switch (node.kind) {
    case FilterNode::Kind::Leaf: {
      os << node.attribute << ' ' << dbsp::to_string(node.op) << ' ';
      if (node.op == Op::Between) {
        os << value_literal(node.operands[0]) << " and " << value_literal(node.operands[1]);
      } else if (node.op == Op::In) {
        os << '(';
        for (std::size_t i = 0; i < node.operands.size(); ++i) {
          if (i != 0) os << ", ";
          os << value_literal(node.operands[i]);
        }
        os << ')';
      } else {
        os << value_literal(node.operands[0]);
      }
      break;
    }
    case FilterNode::Kind::Not:
      os << "not (";
      render(*node.children[0], os);
      os << ')';
      break;
    case FilterNode::Kind::And:
    case FilterNode::Kind::Or: {
      const char* sep = node.kind == FilterNode::Kind::And ? " and " : " or ";
      os << '(';
      for (std::size_t i = 0; i < node.children.size(); ++i) {
        if (i != 0) os << sep;
        render(*node.children[i], os);
      }
      os << ')';
      break;
    }
  }
}

}  // namespace

Result<std::unique_ptr<Node>> Filter::compile(const Schema& schema) const {
  if (!node_) {
    return Status::error(ErrorCode::kInvalidArgument, "empty filter");
  }
  auto tree = compile_node(*node_, schema);
  if (!tree.ok()) return tree.status();
  auto simplified = simplify(std::move(tree).value());
  if (simplified->is_constant()) {
    // Unreachable from the constant-free builder grammar; guards future
    // extensions (and mirrors parse_subscription's contract).
    return Status::error(ErrorCode::kInvalidArgument,
                         "filter simplifies to a constant");
  }
  return simplified;
}

std::string Filter::to_string() const {
  if (!node_) return "<empty filter>";
  std::ostringstream os;
  render(*node_, os);
  return os.str();
}

Filter operator&&(const Filter& a, const Filter& b) {
  if (!a.valid() || !b.valid()) return Filter();
  return Filter(make_composite(FilterNode::Kind::And, {a.node_, b.node_}));
}

Filter operator||(const Filter& a, const Filter& b) {
  if (!a.valid() || !b.valid()) return Filter();
  return Filter(make_composite(FilterNode::Kind::Or, {a.node_, b.node_}));
}

Filter operator!(const Filter& a) {
  if (!a.valid()) return Filter();
  return Filter(make_composite(FilterNode::Kind::Not, {a.node_}));
}

Filter AttributeRef::leaf(Op op, std::vector<Value> operands) const {
  auto node = std::make_shared<FilterNode>();
  node->kind = FilterNode::Kind::Leaf;
  node->attribute = name_;
  node->op = op;
  node->operands = std::move(operands);
  return Filter(std::move(node));
}

Filter AttributeRef::eq(Value v) const { return leaf(Op::Eq, {std::move(v)}); }
Filter AttributeRef::ne(Value v) const { return leaf(Op::Ne, {std::move(v)}); }
Filter AttributeRef::lt(Value v) const { return leaf(Op::Lt, {std::move(v)}); }
Filter AttributeRef::le(Value v) const { return leaf(Op::Le, {std::move(v)}); }
Filter AttributeRef::gt(Value v) const { return leaf(Op::Gt, {std::move(v)}); }
Filter AttributeRef::ge(Value v) const { return leaf(Op::Ge, {std::move(v)}); }

Filter AttributeRef::between(Value low, Value high) const {
  return leaf(Op::Between, {std::move(low), std::move(high)});
}

Filter AttributeRef::in(std::vector<Value> values) const {
  return leaf(Op::In, std::move(values));
}

Filter AttributeRef::prefix(std::string text) const {
  return leaf(Op::Prefix, {Value(std::move(text))});
}
Filter AttributeRef::suffix(std::string text) const {
  return leaf(Op::Suffix, {Value(std::move(text))});
}
Filter AttributeRef::contains(std::string text) const {
  return leaf(Op::Contains, {Value(std::move(text))});
}

Filter all_of(std::vector<Filter> parts) {
  std::vector<std::shared_ptr<const FilterNode>> children;
  children.reserve(parts.size());
  for (const Filter& p : parts) {
    if (!p.valid()) return Filter();
    children.push_back(p.node_);
  }
  if (children.size() == 1) return parts.front();
  // Zero parts still yields a composite node: compile() then reports the
  // descriptive kInvalidArgument instead of silently producing emptiness.
  return Filter(make_composite(FilterNode::Kind::And, std::move(children)));
}

Filter any_of(std::vector<Filter> parts) {
  std::vector<std::shared_ptr<const FilterNode>> children;
  children.reserve(parts.size());
  for (const Filter& p : parts) {
    if (!p.valid()) return Filter();
    children.push_back(p.node_);
  }
  if (children.size() == 1) return parts.front();
  return Filter(make_composite(FilterNode::Kind::Or, std::move(children)));
}

Filter not_of(Filter f) { return !f; }

}  // namespace dbsp
