#include "api/pubsub.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "selectivity/estimator.hpp"
#include "selectivity/stats.hpp"
#include "subscription/parser.hpp"

namespace dbsp {

namespace api_detail {

struct SubEntry {
  std::unique_ptr<Subscription> sub;
  PubSub::Callback callback;
};

/// The facade's whole state. Held by the PubSub through a shared_ptr so
/// handles can observe its lifetime through weak_ptrs — a handle outliving
/// the PubSub degrades to explicit kUnavailable errors instead of UB.
struct PubSubCore {
  PubSubCore(Schema schema_in, PubSubOptions options_in)
      : schema(std::move(schema_in)),
        options(options_in),
        stats(schema),
        engine(schema, options.engine) {
    if (options.pruning) {
      if (options.engine.backend != MatcherBackend::Counting) {
        throw std::logic_error("PubSub: pruning requires the Counting backend");
      }
      // Untrained statistics estimate every predicate at 0 presence; the
      // queues still work, train() upgrades the scores in place.
      stats.finalize();
      estimator.emplace(stats);
      pruning.emplace(engine, *estimator, options.prune);
    }
  }

  Schema schema;
  PubSubOptions options;
  EventStats stats;
  std::optional<SelectivityEstimator> estimator;
  /// Declared before engine/pruning: the owned Subscriptions must outlive
  /// both (they reference the trees), so they must be destroyed last.
  std::unordered_map<SubscriptionId::value_type, SubEntry> subs;
  ShardedEngine engine;  // references this->schema; PubSubCore never moves
  std::optional<ShardedPruningSet> pruning;

  SubscriptionId::value_type next_id = 0;
  std::size_t callbacks_registered = 0;
  std::uint64_t next_seq = 0;
  std::uint64_t notifications = 0;

  std::vector<SubscriptionId> match_scratch;
  std::vector<std::vector<SubscriptionId>> batch_scratch;

  Status unsubscribe(SubscriptionId id) {
    const auto it = subs.find(id.value());
    if (it == subs.end()) {
      return Status::error(ErrorCode::kNotFound,
                           "subscription #" + std::to_string(id.value()) +
                               " is not registered");
    }
    // Pruning state first (release-before-engine-removal invariant), then
    // the engine entry, then the owning map slot.
    if (pruning) pruning->remove(id);
    engine.remove(id);
    if (it->second.callback) --callbacks_registered;
    subs.erase(it);
    return Status();
  }

  void dispatch(std::span<const SubscriptionId> matched, std::uint64_t seq,
                const Event& event) {
    for (const SubscriptionId id : matched) {
      const auto it = subs.find(id.value());
      if (it != subs.end() && it->second.callback) {
        it->second.callback(Notification{id, seq, event});
      }
    }
  }
};

}  // namespace api_detail

using api_detail::PubSubCore;

// --- SubscriptionHandle ------------------------------------------------------

SubscriptionHandle::SubscriptionHandle(SubscriptionHandle&& other) noexcept
    : core_(std::move(other.core_)), id_(other.id_) {
  other.core_.reset();
  other.id_ = SubscriptionId();
}

SubscriptionHandle& SubscriptionHandle::operator=(SubscriptionHandle&& other) noexcept {
  if (this != &other) {
    if (attached()) (void)release();  // drop the current claim first
    core_ = std::move(other.core_);
    id_ = other.id_;
    other.core_.reset();
    other.id_ = SubscriptionId();
  }
  return *this;
}

SubscriptionHandle::~SubscriptionHandle() {
  if (attached()) (void)release();
}

bool SubscriptionHandle::active() const {
  if (!id_.valid()) return false;
  const auto core = core_.lock();
  return core != nullptr && core->subs.count(id_.value()) != 0;
}

Status SubscriptionHandle::release() {
  if (!id_.valid()) {
    return Status::error(ErrorCode::kFailedPrecondition,
                         "handle is empty, moved-from, or already released");
  }
  const SubscriptionId id = id_;
  id_ = SubscriptionId();
  const auto core = core_.lock();
  core_.reset();
  if (core == nullptr) {
    return Status::error(ErrorCode::kUnavailable,
                         "the PubSub behind this handle no longer exists");
  }
  return core->unsubscribe(id);
}

// --- PubSub ------------------------------------------------------------------

PubSub::PubSub(Schema schema, PubSubOptions options)
    : core_(std::make_shared<PubSubCore>(std::move(schema), options)) {}

PubSub::~PubSub() = default;

const Schema& PubSub::schema() const { return core_->schema; }

EventBuilder PubSub::event() const { return EventBuilder(core_->schema); }

Result<SubscriptionHandle> PubSub::subscribe(const Filter& filter, Callback callback) {
  auto tree = filter.compile(core_->schema);
  if (!tree.ok()) return tree.status();
  return subscribe(std::move(tree).value(), std::move(callback));
}

Result<SubscriptionHandle> PubSub::subscribe(std::string_view dsl_text,
                                             Callback callback) {
  std::unique_ptr<Node> tree;
  try {
    tree = parse_subscription(dsl_text, core_->schema);
  } catch (const ParseError& e) {
    return Status::error(ErrorCode::kParseError,
                         std::string(e.what()) + " at position " +
                             std::to_string(e.position()));
  } catch (const std::exception& e) {  // unknown attribute etc.
    return Status::error(ErrorCode::kParseError, e.what());
  }
  return subscribe(std::move(tree), std::move(callback));
}

Result<SubscriptionHandle> PubSub::subscribe(std::unique_ptr<Node> tree,
                                             Callback callback) {
  if (tree == nullptr) {
    return Status::error(ErrorCode::kInvalidArgument, "null subscription tree");
  }
  if (tree->is_constant()) {
    return Status::error(ErrorCode::kInvalidArgument,
                         "constant filters cannot be subscribed");
  }
  auto& c = *core_;
  const SubscriptionId id(c.next_id);
  auto sub = std::make_unique<Subscription>(id, std::move(tree));
  if (!c.engine.add(*sub)) {
    return Status::error(ErrorCode::kInvalidArgument,
                         "filter is not convertible by the configured backend");
  }
  ++c.next_id;
  if (c.pruning) c.pruning->add(*sub);
  if (callback) ++c.callbacks_registered;
  c.subs.emplace(id.value(),
                 api_detail::SubEntry{std::move(sub), std::move(callback)});
  return SubscriptionHandle(core_, id);
}

Status PubSub::unsubscribe(SubscriptionId id) { return core_->unsubscribe(id); }

bool PubSub::contains(SubscriptionId id) const {
  return core_->subs.count(id.value()) != 0;
}

std::size_t PubSub::subscription_count() const { return core_->subs.size(); }

Result<bool> PubSub::matches(SubscriptionId id, const Event& event) const {
  const auto it = core_->subs.find(id.value());
  if (it == core_->subs.end()) {
    return Status::error(ErrorCode::kNotFound, "unknown subscription id");
  }
  return it->second.sub->matches(event);
}

Result<std::string> PubSub::subscription_text(SubscriptionId id) const {
  const auto it = core_->subs.find(id.value());
  if (it == core_->subs.end()) {
    return Status::error(ErrorCode::kNotFound, "unknown subscription id");
  }
  return it->second.sub->to_string(core_->schema);
}

std::size_t PubSub::publish(const Event& event) {
  auto& c = *core_;
  c.match_scratch.clear();
  c.engine.match(event, c.match_scratch);
  const std::uint64_t seq = c.next_seq++;
  c.notifications += c.match_scratch.size();
  if (c.callbacks_registered > 0) c.dispatch(c.match_scratch, seq, event);
  return c.match_scratch.size();
}

std::uint64_t PubSub::publish_batch(std::span<const Event> events) {
  auto& c = *core_;
  c.engine.match_batch(events, c.batch_scratch);
  std::uint64_t total = 0;
  for (const auto& row : c.batch_scratch) total += row.size();
  c.notifications += total;
  if (c.callbacks_registered > 0) {
    for (std::size_t i = 0; i < events.size(); ++i) {
      c.dispatch(c.batch_scratch[i], c.next_seq + i, events[i]);
    }
  }
  c.next_seq += events.size();
  return total;
}

std::uint64_t PubSub::notifications_delivered() const { return core_->notifications; }

namespace {

Status pruning_disabled() {
  return Status::error(ErrorCode::kFailedPrecondition,
                       "pruning is disabled (PubSubOptions::pruning)");
}

}  // namespace

Status PubSub::train(std::span<const Event> sample) {
  auto& c = *core_;
  if (!c.options.pruning) return pruning_disabled();
  c.stats.reset();
  for (const Event& e : sample) c.stats.observe(e);
  c.stats.finalize();
  // The estimator holds the stats by reference; queued candidate scores go
  // stale until the caller's next rescore_all().
  return Status();
}

Result<std::size_t> PubSub::prune(std::size_t k) {
  if (!core_->pruning) return pruning_disabled();
  return core_->pruning->prune(k);
}

Result<std::size_t> PubSub::prune_to_fraction(double fraction) {
  if (!core_->pruning) return pruning_disabled();
  if (!(fraction >= 0.0 && fraction <= 1.0)) {
    return Status::error(ErrorCode::kInvalidArgument,
                         "fraction must be in [0, 1]");
  }
  return core_->pruning->prune_to_fraction(fraction);
}

Status PubSub::set_prune_dimension(PruneDimension dimension) {
  auto& c = *core_;
  if (!c.pruning) return pruning_disabled();
  c.options.prune.dimension = dimension;
  // Rebuild over the current trees in ascending-id order for determinism;
  // baselines re-capture the present (already pruned) state, which is what
  // incremental re-optimization wants.
  std::vector<Subscription*> subs;
  subs.reserve(c.subs.size());
  for (auto& [raw_id, entry] : c.subs) subs.push_back(entry.sub.get());
  std::sort(subs.begin(), subs.end(),
            [](const Subscription* a, const Subscription* b) { return a->id() < b->id(); });
  c.pruning.emplace(c.engine, *c.estimator, c.options.prune, subs);
  return Status();
}

Status PubSub::set_drift_threshold(std::size_t mutations) {
  if (!core_->pruning) return pruning_disabled();
  core_->pruning->set_drift_threshold(mutations);
  return Status();
}

bool PubSub::drift_pending() const {
  return core_->pruning && core_->pruning->drift_pending();
}

Status PubSub::rescore_all() {
  if (!core_->pruning) return pruning_disabled();
  core_->pruning->rescore_all();
  return Status();
}

PubSub::PruningStats PubSub::pruning_stats() const {
  PruningStats out;
  const auto& c = *core_;
  if (!c.pruning) return out;
  out.enabled = true;
  out.tracked = c.pruning->subscription_count();
  out.total_possible = c.pruning->total_possible();
  out.performed = c.pruning->performed();
  out.maintenance = c.pruning->maintenance();
  return out;
}

std::size_t PubSub::shard_count() const { return core_->engine.shard_count(); }

std::size_t PubSub::association_count() const {
  return core_->engine.association_count();
}

std::size_t PubSub::subscription_bytes() const {
  std::size_t total = 0;
  for (const auto& [raw_id, entry] : core_->subs) {
    total += entry.sub->root().size_bytes();
  }
  return total;
}

CountingMatcher::Counters PubSub::counters() const { return core_->engine.counters(); }

void PubSub::reset_counters() {
  core_->engine.reset_counters();
  core_->notifications = 0;
}

}  // namespace dbsp
