#include "api/pubsub.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "common/env.hpp"
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "obs/exposition.hpp"
#include "obs/trace.hpp"
#include "selectivity/estimator.hpp"
#include "selectivity/stats.hpp"
#include "subscription/parser.hpp"

namespace dbsp {

namespace api_detail {

struct SubEntry {
  std::unique_ptr<Subscription> sub;
  PubSub::Callback callback;
};

/// The facade's whole state. Held by the PubSub through a shared_ptr so
/// handles can observe its lifetime through weak_ptrs — a handle outliving
/// the PubSub degrades to explicit kUnavailable errors instead of UB.
///
/// `mutex` serializes every facade entry point (including the handle
/// paths), which is what makes the match-vs-churn exclusion contract of
/// the wrapped ShardedEngine — and the single-writer contract of the
/// StateStore — hold under concurrent callers. Everything mutable is
/// DBSP_GUARDED_BY(mutex), so under clang's thread-safety analysis a new
/// entry point that forgets the lock fails to compile; the runtime side
/// of the same contract is exercised by tests/concurrent_stress_test.cpp
/// under ThreadSanitizer. `schema` (and `options.engine`) are written
/// only during construction and immutable afterwards, so they are read
/// without the lock.
struct PubSubCore {
  /// The effective trace-sampling stride: 0 when metrics are off, the
  /// explicit option when set, else the DBSP_METRICS_SAMPLE knob.
  static std::uint32_t resolve_sample(const PubSubOptions& options) {
    if (!options.metrics) return 0;
    if (options.metrics_sample != 0) return options.metrics_sample;
    const std::int64_t every = env_int("DBSP_METRICS_SAMPLE", 8);
    return every > 0 ? static_cast<std::uint32_t>(every) : 0;
  }

  PubSubCore(Schema schema_in, PubSubOptions options_in)
      : schema(std::move(schema_in)),
        options(options_in),
        stats(schema),
        engine(schema, options.engine),
        sampler(resolve_sample(options_in)) {
    if (options.pruning) {
      if (options.engine.backend != MatcherBackend::Counting) {
        throw std::logic_error("PubSub: pruning requires the Counting backend");
      }
      // Untrained statistics estimate every predicate at 0 presence; the
      // queues still work, train() upgrades the scores in place.
      stats.finalize();
      estimator.emplace(stats);
      pruning.emplace(engine, *estimator, options.prune);
    }
    if (options.aggregation) {
      aggregator.emplace(schema, options.agg);
      // The engine forwards all add/remove/reindex churn and routes
      // matching through the aggregator from here on; the facade only
      // drives training, thresholds and introspection.
      engine.attach_aggregation(&*aggregator);
    }
    if (options.metrics) {
      registry = std::make_shared<obs::MetricsRegistry>();
      publishes_total = &registry->counter("dbsp_publishes_total");
      events_total = &registry->counter("dbsp_events_total");
      notifications_total = &registry->counter("dbsp_notifications_total");
      match_us = &registry->histogram("dbsp_phase_us", {{"phase", "match"}});
      dispatch_us = &registry->histogram("dbsp_phase_us", {{"phase", "dispatch"}});
      prune_us = &registry->histogram("dbsp_phase_us", {{"phase", "prune"}});
      engine.attach_metrics(*registry);
    }
    if (options.tracing) {
      recorder = std::make_shared<obs::FlightRecorder>(options.trace);
    }
  }

  /// Immutable after construction (the facade is the schema authority).
  Schema schema;

  /// Serializes all facade state below. Declared before the guarded
  /// members so diagnostics can reference it; mutable so const observers
  /// (subscription_count, pruning_stats, ...) can lock too.
  mutable Mutex mutex;

  /// options.prune.dimension is rewritten by set_prune_dimension; the rest
  /// is construction-time configuration.
  PubSubOptions options DBSP_GUARDED_BY(mutex);
  EventStats stats DBSP_GUARDED_BY(mutex);
  std::optional<SelectivityEstimator> estimator DBSP_GUARDED_BY(mutex);
  /// Declared before engine/pruning: the owned Subscriptions must outlive
  /// both (they reference the trees), so they must be destroyed last.
  std::unordered_map<SubscriptionId::value_type, SubEntry> subs
      DBSP_GUARDED_BY(mutex);
  // References this->schema; PubSubCore never moves. Holding `mutex` across
  // every engine call is exactly the engine's external-serialization
  // contract — one writer OR one matching call at a time (match_batch still
  // fans out internally; its workers touch disjoint per-shard state).
  ShardedEngine engine DBSP_GUARDED_BY(mutex);
  std::optional<ShardedPruningSet> pruning DBSP_GUARDED_BY(mutex);
  /// The aggregation front stage (options.aggregation). The engine holds a
  /// raw pointer to it and is the only churn path; matching under `mutex`
  /// satisfies the aggregator's probe-vs-churn exclusion contract.
  std::optional<agg::SubscriptionAggregator> aggregator DBSP_GUARDED_BY(mutex);

  /// Durable mode (PubSub::open). Fail-stop: the first append/checkpoint
  /// failure moves its Status into store_failure and drops the store, so
  /// the on-disk state stays a consistent prefix of history. The store is
  /// single-writer by contract; `mutex` is what serializes it.
  std::unique_ptr<store::StateStore> store DBSP_GUARDED_BY(mutex)
      DBSP_PT_GUARDED_BY(mutex);
  Status store_failure DBSP_GUARDED_BY(mutex);
  bool stats_trained DBSP_GUARDED_BY(mutex) = false;

  SubscriptionId::value_type next_id DBSP_GUARDED_BY(mutex) = 0;
  std::size_t callbacks_registered DBSP_GUARDED_BY(mutex) = 0;
  std::uint64_t next_seq DBSP_GUARDED_BY(mutex) = 0;
  std::uint64_t notifications DBSP_GUARDED_BY(mutex) = 0;

  std::vector<SubscriptionId> match_scratch DBSP_GUARDED_BY(mutex);
  std::vector<std::vector<SubscriptionId>> batch_scratch DBSP_GUARDED_BY(mutex);

  /// Observability (obs/metrics.hpp). All set once in the constructor and
  /// immutable afterwards, so they are read without the facade lock; the
  /// registry and its series are internally synchronized (lock-free on the
  /// record path). Null / every==0 when options.metrics is off — the
  /// publish path then pays one branch per pointer check and nothing else.
  std::shared_ptr<obs::MetricsRegistry> registry;
  obs::Counter* publishes_total = nullptr;
  obs::Counter* events_total = nullptr;
  obs::Counter* notifications_total = nullptr;
  obs::Histogram* match_us = nullptr;
  obs::Histogram* dispatch_us = nullptr;
  obs::Histogram* prune_us = nullptr;
  /// 1-in-N gate shared by the match and dispatch phase timers, so one
  /// sampled publish contributes to both series.
  obs::Sampler sampler;

  /// Per-event tracing (options.tracing): the flight recorder is shared so
  /// embedding layers (the net server) can join its export surface, and
  /// internally synchronized. The builder collects one in-flight trace at
  /// a time, which the facade lock already serializes.
  std::shared_ptr<obs::FlightRecorder> recorder;
  obs::TraceBuilder trace_builder DBSP_GUARDED_BY(mutex);

  /// Arms the trace builder for this publish when tracing is on: a
  /// propagated context joins the caller's trace; a fresh context is
  /// head-sampled here. Returns the builder or null.
  obs::TraceBuilder* begin_trace(obs::TraceContext& context)
      DBSP_REQUIRES(mutex) {
    if (recorder == nullptr) return nullptr;
    if (!context.active()) {
      context = obs::make_trace_context(recorder->should_sample());
    }
    trace_builder.begin(context);
    return &trace_builder;
  }

  /// Runs one durable-store operation; converts a throw into the fail-stop
  /// detach. Returns ok when not durable (in-memory mode logs nothing).
  template <class Fn>
  Status log_to_store(Fn&& fn) DBSP_REQUIRES(mutex) {
    if (!store) return Status();
    try {
      fn(*store);
      return Status();
    } catch (const store::StoreError& e) {
      store_failure = Status::error(
          e.io() ? ErrorCode::kIoError : ErrorCode::kDataLoss, e.what());
    } catch (const WireError& e) {
      store_failure = Status::error(ErrorCode::kDataLoss, e.what());
    }
    store.reset();
    return store_failure;
  }

  /// The borrowed full-state view the store snapshots: every subscription's
  /// current tree plus its pruning accounting, the id/seq counters, and the
  /// trained statistics.
  [[nodiscard]] store::SnapshotData build_snapshot() const DBSP_REQUIRES(mutex) {
    store::SnapshotData snap;
    snap.schema = &schema;
    snap.next_id = next_id;
    snap.next_seq = next_seq;
    snap.stats = stats_trained ? &stats : nullptr;
    snap.subs.reserve(subs.size());
    for (const auto& [raw_id, entry] : subs) {
      store::SnapshotSub s;
      s.id = entry.sub->id();
      s.tree = &entry.sub->root();
      if (pruning) {
        if (const auto acct = pruning->accounting(s.id)) {
          s.capacity = acct->first;
          s.performed = acct->second;
        }
      }
      snap.subs.push_back(s);
    }
    std::sort(snap.subs.begin(), snap.subs.end(),
              [](const store::SnapshotSub& a, const store::SnapshotSub& b) {
                return a.id < b.id;
              });
    return snap;
  }

  /// Auto-checkpoint once enough records accumulated since the last one.
  Status maybe_checkpoint() DBSP_REQUIRES(mutex) {
    if (!store || !store->wants_checkpoint()) return Status();
    return log_to_store([this](store::StateStore& s) {
      mutex.assert_held();  // runs inside log_to_store, under the lock
      s.checkpoint(build_snapshot());
    });
  }

  Status unsubscribe(SubscriptionId id) DBSP_REQUIRES(mutex) {
    const auto it = subs.find(id.value());
    if (it == subs.end()) {
      return Status::error(ErrorCode::kNotFound,
                           "subscription #" + std::to_string(id.value()) +
                               " is not registered");
    }
    // On append failure the store detaches (fail-stop), frozen at a state
    // that still holds this subscription — a consistent prefix of history —
    // while the in-memory unsubscribe below completes and the error is
    // reported to the caller.
    const Status logged = log_to_store(
        [&](store::StateStore& s) { s.append_unsubscribe(id); });
    // Pruning state first (release-before-engine-removal invariant), then
    // the engine entry, then the owning map slot.
    if (pruning) pruning->remove(id);
    engine.remove(id);
    if (it->second.callback) --callbacks_registered;
    subs.erase(it);
    if (!logged.ok()) return logged;
    return maybe_checkpoint();
  }

  /// Callbacks run under `mutex` (the dispatch order is part of the
  /// serialized publish) — which is why they must not re-enter the facade.
  void dispatch(std::span<const SubscriptionId> matched, std::uint64_t seq,
                const Event& event, const obs::TraceContext& trace = {},
                std::uint64_t published_unix_us = 0) DBSP_REQUIRES(mutex) {
    for (const SubscriptionId id : matched) {
      const auto it = subs.find(id.value());
      if (it != subs.end() && it->second.callback) {
        it->second.callback(
            Notification{id, seq, event, trace, published_unix_us});
      }
    }
  }
};

}  // namespace api_detail

using api_detail::PubSubCore;

namespace {

/// Registers the scrape-time sync hook: every registry snapshot folds the
/// facade's legacy stat structs (subscription table size, engine counters,
/// store stats, pruning accounting) into registry series, so the structs
/// stay authoritative and the registry never lags by more than one scrape.
/// Counters use sync_to (monotone even across reset_counters); levels are
/// gauges. The hook captures the core through a weak_ptr and no-ops once
/// the facade is gone — it is never removed, it simply dies with the
/// registry (removal from the core's destructor could deadlock when an
/// in-flight scrape's promoted shared_ptr is the last owner).
void register_metrics_hook(const std::shared_ptr<PubSubCore>& core) {
  if (core->registry == nullptr) return;
  auto& r = *core->registry;
  // Series pointers are stable for the registry's lifetime, so the hook
  // captures them raw (the hook cannot outlive the registry that owns it).
  auto* subscriptions = &r.gauge("dbsp_subscriptions");
  auto* durable = &r.gauge("dbsp_durable");
  auto* match_events = &r.counter("dbsp_match_events_total");
  auto* predicate_hits = &r.counter("dbsp_predicate_hits_total");
  auto* counter_increments = &r.counter("dbsp_counter_increments_total");
  auto* tree_evaluations = &r.counter("dbsp_tree_evaluations_total");
  auto* matches = &r.counter("dbsp_matches_total");
  auto* wal_records = &r.counter("dbsp_wal_records_total");
  auto* wal_bytes = &r.counter("dbsp_wal_bytes_total");
  auto* snapshots = &r.counter("dbsp_snapshots_written_total");
  auto* wal_lag = &r.gauge("dbsp_wal_lag_records");
  auto* epoch = &r.gauge("dbsp_store_epoch");
  auto* pruning_tracked = &r.gauge("dbsp_pruning_tracked");
  auto* pruning_capacity = &r.gauge("dbsp_pruning_capacity");
  auto* pruning_performed = &r.gauge("dbsp_pruning_performed");
  auto* drift_pending = &r.gauge("dbsp_drift_pending");
  auto* admissions = &r.counter("dbsp_pruning_admissions_total");
  auto* releases = &r.counter("dbsp_pruning_releases_total");
  auto* compactions = &r.counter("dbsp_pruning_queue_compactions_total");
  auto* rescores = &r.counter("dbsp_pruning_full_rescores_total");
  auto* agg_subgroups = &r.gauge("dbsp_agg_subgroups");
  auto* agg_dimensions = &r.gauge("dbsp_agg_dimensions");
  auto* agg_advertised = &r.gauge("dbsp_agg_advertised_bytes");
  auto* agg_probes = &r.counter("dbsp_agg_events_probed_total");
  auto* agg_admitted = &r.counter("dbsp_agg_subgroups_admitted_total");
  auto* agg_skipped = &r.counter("dbsp_agg_subgroups_skipped_total");
  auto* agg_candidates = &r.counter("dbsp_agg_candidates_total");
  auto* agg_matches = &r.counter("dbsp_agg_matches_total");
  auto* agg_widenings = &r.counter("dbsp_agg_summary_widenings_total");
  auto* agg_subgroup_rebuilds = &r.counter("dbsp_agg_subgroup_rebuilds_total");
  auto* agg_full_rebuilds = &r.counter("dbsp_agg_full_rebuilds_total");
  std::weak_ptr<PubSubCore> weak = core;
  r.add_hook([=]() {
    const auto c = weak.lock();
    if (c == nullptr) return;
    MutexLock lock(c->mutex);
    subscriptions->set(static_cast<double>(c->subs.size()));
    durable->set(c->store ? 1.0 : 0.0);
    const CountingMatcher::Counters counters = c->engine.counters();
    match_events->sync_to(counters.events);
    predicate_hits->sync_to(counters.predicate_hits);
    counter_increments->sync_to(counters.counter_increments);
    tree_evaluations->sync_to(counters.tree_evaluations);
    matches->sync_to(counters.matches);
    if (c->store) {
      const StoreStats& st = c->store->stats();
      wal_records->sync_to(st.wal_records);
      wal_bytes->sync_to(st.wal_bytes);
      snapshots->sync_to(st.snapshots_written);
      wal_lag->set(static_cast<double>(st.records_since_checkpoint));
      epoch->set(static_cast<double>(st.epoch));
    }
    if (c->pruning) {
      pruning_tracked->set(static_cast<double>(c->pruning->subscription_count()));
      pruning_capacity->set(static_cast<double>(c->pruning->total_possible()));
      pruning_performed->set(static_cast<double>(c->pruning->performed()));
      drift_pending->set(c->pruning->drift_pending() ? 1.0 : 0.0);
      const auto m = c->pruning->maintenance();
      admissions->sync_to(m.admissions);
      releases->sync_to(m.releases);
      compactions->sync_to(m.queue_compactions);
      rescores->sync_to(m.full_rescores);
    }
    if (c->aggregator) {
      agg_subgroups->set(static_cast<double>(c->aggregator->subgroup_count()));
      agg_dimensions->set(static_cast<double>(c->aggregator->dimensions().size()));
      agg_advertised->set(static_cast<double>(c->aggregator->advertised_bytes()));
      const agg::AggregationCounters ac = c->aggregator->counters();
      agg_probes->sync_to(ac.events_probed);
      agg_admitted->sync_to(ac.subgroups_admitted);
      agg_skipped->sync_to(ac.subgroups_skipped);
      agg_candidates->sync_to(ac.candidates_evaluated);
      agg_matches->sync_to(ac.matches);
      agg_widenings->sync_to(ac.summary_widenings);
      agg_subgroup_rebuilds->sync_to(ac.subgroup_rebuilds);
      agg_full_rebuilds->sync_to(ac.full_rebuilds);
    }
  });
}

}  // namespace

// --- SubscriptionHandle ------------------------------------------------------

SubscriptionHandle::SubscriptionHandle(SubscriptionHandle&& other) noexcept
    : core_(std::move(other.core_)), id_(other.id_) {
  other.core_.reset();
  other.id_ = SubscriptionId();
}

SubscriptionHandle& SubscriptionHandle::operator=(SubscriptionHandle&& other) noexcept {
  if (this != &other) {
    if (attached()) (void)release();  // drop the current claim first
    core_ = std::move(other.core_);
    id_ = other.id_;
    other.core_.reset();
    other.id_ = SubscriptionId();
  }
  return *this;
}

SubscriptionHandle::~SubscriptionHandle() {
  if (attached()) (void)release();
}

bool SubscriptionHandle::active() const {
  if (!id_.valid()) return false;
  const auto core = core_.lock();
  if (core == nullptr) return false;
  MutexLock lock(core->mutex);
  return core->subs.count(id_.value()) != 0;
}

Status SubscriptionHandle::release() {
  if (!id_.valid()) {
    return Status::error(ErrorCode::kFailedPrecondition,
                         "handle is empty, moved-from, or already released");
  }
  const SubscriptionId id = id_;
  id_ = SubscriptionId();
  const auto core = core_.lock();
  core_.reset();
  if (core == nullptr) {
    return Status::error(ErrorCode::kUnavailable,
                         "the PubSub behind this handle no longer exists");
  }
  MutexLock lock(core->mutex);
  return core->unsubscribe(id);
}

// --- PubSub ------------------------------------------------------------------

PubSub::PubSub(Schema schema, PubSubOptions options)
    : core_(std::make_shared<PubSubCore>(std::move(schema), options)) {
  register_metrics_hook(core_);
}

PubSub::~PubSub() = default;

Result<PubSub> PubSub::open(StoreOptions store_options, PubSubOptions options) {
  std::unique_ptr<store::StateStore> state_store;
  store::RecoveredState rec;
  try {
    auto opened = store::StateStore::open(store_options);
    state_store = std::move(opened.first);
    rec = std::move(opened.second);
  } catch (const store::StoreError& e) {
    if (e.not_found()) return Status::error(ErrorCode::kNotFound, e.what());
    return Status::error(e.io() ? ErrorCode::kIoError : ErrorCode::kDataLoss,
                         e.what());
  } catch (const WireError& e) {
    return Status::error(ErrorCode::kDataLoss, e.what());
  }
  if (store_options.schema.attribute_count() > 0 &&
      !store::schemas_equal(store_options.schema, rec.schema)) {
    return Status::error(ErrorCode::kInvalidArgument,
                         "the store's schema does not match the provided one");
  }

  std::shared_ptr<PubSubCore> core;
  try {
    core = std::make_shared<PubSubCore>(std::move(rec.schema), options);
  } catch (const std::logic_error& e) {
    return Status::error(ErrorCode::kInvalidArgument, e.what());
  }
  // The core is not shared with anyone yet, but the recovery population
  // below touches guarded state, so take the lock (uncontended) to keep
  // the analysis airtight.
  MutexLock lock(core->mutex);
  if (!rec.stats.empty()) {
    try {
      WireReader reader(rec.stats);
      core->stats.load(reader);
      if (!reader.exhausted()) throw WireError("trailing bytes after statistics");
      core->stats_trained = true;
    } catch (const WireError& e) {
      return Status::error(ErrorCode::kDataLoss,
                           std::string("stored statistics: ") + e.what());
    }
  }
  for (auto& rsub : rec.subs) {
    auto sub = std::make_unique<Subscription>(rsub.id, std::move(rsub.tree));
    if (!core->engine.add(*sub)) {
      return Status::error(ErrorCode::kFailedPrecondition,
                           "recovered subscription #" +
                               std::to_string(rsub.id.value()) +
                               " is not convertible by the configured backend");
    }
    if (core->pruning) {
      core->pruning->add(*sub);
      // Zero/zero means "no accounting was captured" (leaf-only tree, or a
      // snapshot written with pruning off); the fresh capture above is then
      // already right. Anything else is pre-crash accounting to restore.
      if (rsub.capacity != 0 || rsub.performed != 0) {
        core->pruning->restore_accounting(rsub.id, rsub.capacity, rsub.performed);
      }
    }
    core->subs.emplace(rsub.id.value(),
                       api_detail::SubEntry{std::move(sub), PubSub::Callback{}});
  }
  // A CRC-clean but hostile next_id must not truncate below recovered ids
  // — a wrapped counter would hand out an id the engine already indexes
  // and leave the matcher holding a freed Subscription.
  if (rec.next_id >= SubscriptionId::kInvalid) {
    return Status::error(ErrorCode::kDataLoss,
                         "stored next id is outside the id space");
  }
  core->next_id = static_cast<SubscriptionId::value_type>(rec.next_id);
  core->next_seq = rec.next_seq;
  core->store = std::move(state_store);
  if (core->registry) {
    core->store->attach_metrics(
        &core->registry->histogram("dbsp_phase_us", {{"phase", "wal_append"}}));
  }
  register_metrics_hook(core);
  return PubSub(std::move(core));
}

bool PubSub::durable() const {
  MutexLock lock(core_->mutex);
  return core_->store != nullptr;
}

Status PubSub::checkpoint() {
  auto& c = *core_;
  MutexLock lock(c.mutex);
  if (!c.store) {
    return c.store_failure.ok()
               ? Status::error(ErrorCode::kFailedPrecondition,
                               "this PubSub is not durable (use PubSub::open)")
               : c.store_failure;
  }
  return c.log_to_store([&](store::StateStore& s) {
    c.mutex.assert_held();  // runs inside log_to_store, under the lock
    s.checkpoint(c.build_snapshot());
  });
}

StoreStats PubSub::store_stats() const {
  MutexLock lock(core_->mutex);
  return core_->store ? core_->store->stats() : StoreStats{};
}

const Schema& PubSub::schema() const { return core_->schema; }

EventBuilder PubSub::event() const { return EventBuilder(core_->schema); }

Result<SubscriptionHandle> PubSub::subscribe(const Filter& filter, Callback callback) {
  auto tree = filter.compile(core_->schema);
  if (!tree.ok()) return tree.status();
  return subscribe(std::move(tree).value(), std::move(callback));
}

Result<SubscriptionHandle> PubSub::subscribe(std::string_view dsl_text,
                                             Callback callback) {
  std::unique_ptr<Node> tree;
  try {
    tree = parse_subscription(dsl_text, core_->schema);
  } catch (const ParseError& e) {
    return Status::error(ErrorCode::kParseError,
                         std::string(e.what()) + " at position " +
                             std::to_string(e.position()));
  } catch (const std::exception& e) {  // unknown attribute etc.
    return Status::error(ErrorCode::kParseError, e.what());
  }
  return subscribe(std::move(tree), std::move(callback));
}

Result<SubscriptionHandle> PubSub::subscribe(std::unique_ptr<Node> tree,
                                             Callback callback) {
  if (tree == nullptr) {
    return Status::error(ErrorCode::kInvalidArgument, "null subscription tree");
  }
  if (tree->is_constant()) {
    return Status::error(ErrorCode::kInvalidArgument,
                         "constant filters cannot be subscribed");
  }
  auto& c = *core_;
  MutexLock lock(c.mutex);
  const SubscriptionId id(c.next_id);
  auto sub = std::make_unique<Subscription>(id, std::move(tree));
  if (!c.engine.add(*sub)) {
    return Status::error(ErrorCode::kInvalidArgument,
                         "filter is not convertible by the configured backend");
  }
  // Durable mode: the registration is rolled back when its record cannot
  // be appended, so the WAL never misses a subscribe that later records
  // (prune/unsubscribe of this id) would depend on at replay. A due
  // auto-checkpoint runs *before* the append (the pre-registration state
  // it snapshots is exactly what c.subs holds here), so its failure also
  // surfaces through this rollback instead of being swallowed.
  // Durable subscribes are the WAL hot path worth tracing: a head-sampled
  // (or tail-admitted slow) append gets its own single-span trace.
  obs::TraceContext wal_ctx;
  obs::TraceBuilder* tb =
      c.store != nullptr ? c.begin_trace(wal_ctx) : nullptr;
  Status logged;
  {
    obs::ScopedSpan span(tb, obs::TraceStage::kWalAppend);
    logged = c.log_to_store([&](store::StateStore& s) {
      c.mutex.assert_held();  // runs inside log_to_store, under the lock
      if (s.wants_checkpoint()) s.checkpoint(c.build_snapshot());
      s.append_subscribe(id, sub->root());
    });
  }
  if (tb != nullptr) tb->finish(*c.recorder);
  if (!logged.ok()) {
    c.engine.remove(id);
    return logged;
  }
  ++c.next_id;
  if (c.pruning) c.pruning->add(*sub);
  if (callback) ++c.callbacks_registered;
  c.subs.emplace(id.value(),
                 api_detail::SubEntry{std::move(sub), std::move(callback)});
  return SubscriptionHandle(core_, id);
}

Result<SubscriptionHandle> PubSub::adopt(SubscriptionId id, Callback callback) {
  auto& c = *core_;
  MutexLock lock(c.mutex);
  const auto it = c.subs.find(id.value());
  if (it == c.subs.end()) {
    return Status::error(ErrorCode::kNotFound,
                         "subscription #" + std::to_string(id.value()) +
                             " is not registered");
  }
  if (it->second.callback) --c.callbacks_registered;
  if (callback) ++c.callbacks_registered;
  it->second.callback = std::move(callback);
  return SubscriptionHandle(core_, id);
}

Status PubSub::unsubscribe(SubscriptionId id) {
  MutexLock lock(core_->mutex);
  return core_->unsubscribe(id);
}

bool PubSub::contains(SubscriptionId id) const {
  MutexLock lock(core_->mutex);
  return core_->subs.count(id.value()) != 0;
}

std::size_t PubSub::subscription_count() const {
  MutexLock lock(core_->mutex);
  return core_->subs.size();
}

std::vector<SubscriptionId> PubSub::subscription_ids() const {
  MutexLock lock(core_->mutex);
  std::vector<SubscriptionId> out;
  out.reserve(core_->subs.size());
  for (const auto& [raw_id, entry] : core_->subs) out.emplace_back(raw_id);
  std::sort(out.begin(), out.end());
  return out;
}

Result<bool> PubSub::matches(SubscriptionId id, const Event& event) const {
  MutexLock lock(core_->mutex);
  const auto it = core_->subs.find(id.value());
  if (it == core_->subs.end()) {
    return Status::error(ErrorCode::kNotFound, "unknown subscription id");
  }
  return it->second.sub->matches(event);
}

Result<std::string> PubSub::subscription_text(SubscriptionId id) const {
  MutexLock lock(core_->mutex);
  const auto it = core_->subs.find(id.value());
  if (it == core_->subs.end()) {
    return Status::error(ErrorCode::kNotFound, "unknown subscription id");
  }
  return it->second.sub->to_string(core_->schema);
}

std::size_t PubSub::publish(const Event& event) {
  return publish(event, obs::TraceContext{});
}

std::size_t PubSub::publish(const Event& event, obs::TraceContext context) {
  auto& c = *core_;
  MutexLock lock(c.mutex);
  // One sampling decision covers both phase timers, so a traced publish
  // contributes a matched (match, dispatch) pair to dbsp_phase_us.
  const bool traced = c.sampler.should_sample();
  obs::TraceBuilder* tb = c.begin_trace(context);
  c.match_scratch.clear();
  {
    obs::PhaseTimer timer(traced ? c.match_us : nullptr);
    obs::ScopedSpan span(tb, obs::TraceStage::kMatch);
    c.engine.match(event, c.match_scratch, tb);
    span.set_detail(c.match_scratch.size());
  }
  const std::uint64_t seq = c.next_seq++;
  c.notifications += c.match_scratch.size();
  if (c.publishes_total != nullptr) {
    c.publishes_total->inc();
    c.events_total->inc();
    c.notifications_total->add(c.match_scratch.size());
  }
  if (c.callbacks_registered > 0) {
    obs::PhaseTimer timer(traced ? c.dispatch_us : nullptr);
    obs::ScopedSpan span(tb, obs::TraceStage::kDispatch);
    span.set_detail(c.match_scratch.size());
    // Deliveries (queue wait, socket write on the net edge) parent under
    // the dispatch span that caused them.
    obs::TraceContext delivery = context;
    if (span.span_id() != 0) delivery.parent_span = span.span_id();
    c.dispatch(c.match_scratch, seq, event, delivery,
               tb != nullptr ? tb->start_unix_us() : 0);
  }
  if (tb != nullptr) tb->finish(*c.recorder);
  return c.match_scratch.size();
}

std::uint64_t PubSub::publish_batch(std::span<const Event> events) {
  auto& c = *core_;
  MutexLock lock(c.mutex);
  const bool traced = c.sampler.should_sample();
  // One trace covers the whole batch: the per-event fan-out is the
  // engine's concern, not a causal boundary worth a span each.
  obs::TraceContext context;
  obs::TraceBuilder* tb = c.begin_trace(context);
  {
    obs::PhaseTimer timer(traced ? c.match_us : nullptr);
    obs::ScopedSpan span(tb, obs::TraceStage::kMatch);
    span.set_detail(events.size());
    c.engine.match_batch(events, c.batch_scratch);
  }
  std::uint64_t total = 0;
  for (const auto& row : c.batch_scratch) total += row.size();
  c.notifications += total;
  if (c.publishes_total != nullptr) {
    c.publishes_total->inc();
    c.events_total->add(events.size());
    c.notifications_total->add(total);
  }
  if (c.callbacks_registered > 0) {
    obs::PhaseTimer timer(traced ? c.dispatch_us : nullptr);
    obs::ScopedSpan span(tb, obs::TraceStage::kDispatch);
    span.set_detail(total);
    obs::TraceContext delivery = context;
    if (span.span_id() != 0) delivery.parent_span = span.span_id();
    const std::uint64_t published_us =
        tb != nullptr ? tb->start_unix_us() : 0;
    for (std::size_t i = 0; i < events.size(); ++i) {
      c.dispatch(c.batch_scratch[i], c.next_seq + i, events[i], delivery,
                 published_us);
    }
  }
  c.next_seq += events.size();
  if (tb != nullptr) tb->finish(*c.recorder);
  return total;
}

std::uint64_t PubSub::notifications_delivered() const {
  MutexLock lock(core_->mutex);
  return core_->notifications;
}

namespace {

Status pruning_disabled() {
  return Status::error(ErrorCode::kFailedPrecondition,
                       "pruning is disabled (PubSubOptions::pruning)");
}

}  // namespace

Status PubSub::train(std::span<const Event> sample) {
  auto& c = *core_;
  MutexLock lock(c.mutex);
  if (!c.options.pruning && !c.aggregator) return pruning_disabled();
  c.stats.reset();
  for (const Event& e : sample) c.stats.observe(e);
  c.stats.finalize();
  c.stats_trained = true;
  // Aggregation dimensions rescore against the fresh statistics (full
  // subgroup rebuild when the top-scored dimensions changed).
  if (c.aggregator) c.aggregator->train(c.stats);
  // The estimator holds the stats by reference; queued candidate scores go
  // stale until the caller's next rescore_all().
  const Status logged = c.log_to_store([&](store::StateStore& s) {
    c.mutex.assert_held();  // runs inside log_to_store, under the lock
    s.append_train(c.stats);
  });
  if (!logged.ok()) return logged;
  return c.maybe_checkpoint();
}

namespace {

/// Runs a pruning pass and logs one kPrune record (current full tree) per
/// applied pruning, discovered through the per-shard history deltas. On an
/// append failure the prunings stay applied (they cannot be unwound), the
/// store fail-stops at its pre-pass state — the recovered trees are then
/// simply one generation behind — and the error is reported.
template <class Fn>
Result<std::size_t> logged_prune(PubSubCore& c, Fn&& fn) DBSP_REQUIRES(c.mutex) {
  // The aggregator also walks the history deltas: the per-shard pruning
  // engines reindex their counting matchers directly (bypassing the
  // ShardedEngine forwarding), so pruned trees must be re-joined into
  // their subgroup summaries here to keep the probe stage sound.
  const bool track = c.store != nullptr || c.aggregator.has_value();
  std::vector<std::size_t> history_before;
  if (track) {
    history_before.resize(c.pruning->shard_count());
    for (std::size_t i = 0; i < c.pruning->shard_count(); ++i) {
      history_before[i] = c.pruning->shard(i).history().size();
    }
  }
  const std::size_t done = std::forward<Fn>(fn)();
  if (track && done > 0) {
    for (std::size_t i = 0; i < c.pruning->shard_count(); ++i) {
      const auto& history = c.pruning->shard(i).history();
      for (std::size_t j = history_before[i]; j < history.size(); ++j) {
        const SubscriptionId id = history[j].sub;
        const auto it = c.subs.find(id.value());
        if (it == c.subs.end()) continue;  // released since; nothing to log
        if (c.aggregator) c.aggregator->refresh(*it->second.sub);
        if (c.store) {
          const Status logged = c.log_to_store([&](store::StateStore& s) {
            s.append_prune(id, it->second.sub->root());
          });
          if (!logged.ok()) return logged;
        }
      }
    }
    const Status snapped = c.maybe_checkpoint();
    if (!snapped.ok()) return snapped;
  }
  return done;
}

}  // namespace

Result<std::size_t> PubSub::prune(std::size_t k) {
  auto& c = *core_;
  MutexLock lock(c.mutex);
  if (!c.pruning) return pruning_disabled();
  obs::TraceContext prune_ctx;
  obs::TraceBuilder* tb = c.begin_trace(prune_ctx);
  Result<std::size_t> result = logged_prune(c, [&] {
    c.mutex.assert_held();  // runs inside logged_prune, under the lock
    obs::PhaseTimer timer(c.prune_us);  // maintenance is off the hot path: unsampled
    obs::ScopedSpan span(tb, obs::TraceStage::kPrune);
    const std::size_t done = c.pruning->prune(k);
    span.set_detail(done);
    return done;
  });
  if (tb != nullptr) tb->finish(*c.recorder);
  return result;
}

Result<std::size_t> PubSub::prune_to_fraction(double fraction) {
  auto& c = *core_;
  MutexLock lock(c.mutex);
  if (!c.pruning) return pruning_disabled();
  if (!(fraction >= 0.0 && fraction <= 1.0)) {
    return Status::error(ErrorCode::kInvalidArgument,
                         "fraction must be in [0, 1]");
  }
  obs::TraceContext prune_ctx;
  obs::TraceBuilder* tb = c.begin_trace(prune_ctx);
  Result<std::size_t> result = logged_prune(c, [&] {
    c.mutex.assert_held();  // runs inside logged_prune, under the lock
    obs::PhaseTimer timer(c.prune_us);  // maintenance is off the hot path: unsampled
    obs::ScopedSpan span(tb, obs::TraceStage::kPrune);
    const std::size_t done = c.pruning->prune_to_fraction(fraction);
    span.set_detail(done);
    return done;
  });
  if (tb != nullptr) tb->finish(*c.recorder);
  return result;
}

Status PubSub::set_prune_dimension(PruneDimension dimension) {
  auto& c = *core_;
  MutexLock lock(c.mutex);
  if (!c.pruning) return pruning_disabled();
  c.options.prune.dimension = dimension;
  // Rebuild over the current trees in ascending-id order for determinism;
  // baselines re-capture the present (already pruned) state, which is what
  // incremental re-optimization wants.
  std::vector<Subscription*> subs;
  subs.reserve(c.subs.size());
  for (auto& [raw_id, entry] : c.subs) subs.push_back(entry.sub.get());
  std::sort(subs.begin(), subs.end(),
            [](const Subscription* a, const Subscription* b) { return a->id() < b->id(); });
  c.pruning.emplace(c.engine, *c.estimator, c.options.prune, subs);
  return Status();
}

Status PubSub::set_drift_threshold(std::size_t mutations) {
  auto& c = *core_;
  MutexLock lock(c.mutex);
  if (!c.pruning && !c.aggregator) return pruning_disabled();
  if (c.pruning) c.pruning->set_drift_threshold(mutations);
  if (c.aggregator) c.aggregator->set_rescore_threshold(mutations);
  return Status();
}

bool PubSub::drift_pending() const {
  MutexLock lock(core_->mutex);
  return (core_->pruning && core_->pruning->drift_pending()) ||
         (core_->aggregator && core_->aggregator->rescore_pending());
}

Status PubSub::rescore_all() {
  auto& c = *core_;
  MutexLock lock(c.mutex);
  if (!c.pruning && !c.aggregator) return pruning_disabled();
  if (c.pruning) c.pruning->rescore_all();
  // train() is the aggregation rescore: it re-ranks dimensions over the
  // current statistics and clears the rescore trigger. Safe untrained —
  // the scorer falls back to constraint frequency.
  if (c.aggregator) c.aggregator->train(c.stats);
  return Status();
}

PubSub::PruningStats PubSub::pruning_stats() const {
  PruningStats out;
  const auto& c = *core_;
  MutexLock lock(c.mutex);
  if (!c.pruning) return out;
  out.enabled = true;
  out.tracked = c.pruning->subscription_count();
  out.total_possible = c.pruning->total_possible();
  out.performed = c.pruning->performed();
  out.maintenance = c.pruning->maintenance();
  return out;
}

PubSub::AggregationStats PubSub::aggregation_stats() const {
  AggregationStats out;
  const auto& c = *core_;
  MutexLock lock(c.mutex);
  if (!c.aggregator) return out;
  out.enabled = true;
  out.subgroups = c.aggregator->subgroup_count();
  out.dimensions = c.aggregator->dimensions().size();
  out.advertised_bytes = c.aggregator->advertised_bytes();
  out.counters = c.aggregator->counters();
  return out;
}

std::size_t PubSub::shard_count() const {
  MutexLock lock(core_->mutex);
  return core_->engine.shard_count();
}

std::size_t PubSub::association_count() const {
  MutexLock lock(core_->mutex);
  return core_->engine.association_count();
}

std::size_t PubSub::subscription_bytes() const {
  MutexLock lock(core_->mutex);
  std::size_t total = 0;
  for (const auto& [raw_id, entry] : core_->subs) {
    total += entry.sub->root().size_bytes();
  }
  return total;
}

CountingMatcher::Counters PubSub::counters() const {
  MutexLock lock(core_->mutex);
  return core_->engine.counters();
}

void PubSub::reset_counters() {
  MutexLock lock(core_->mutex);
  core_->engine.reset_counters();
  if (core_->aggregator) core_->aggregator->reset_counters();
  core_->notifications = 0;
}

obs::MetricsSnapshot PubSub::metrics() const {
  // Never holds the facade lock here: snapshot() runs the sync hook, and
  // the hook takes that lock itself (facade -> registry is the one order).
  if (core_->registry == nullptr) return {};
  return core_->registry->snapshot();
}

std::string PubSub::metrics_json() const { return obs::to_json(metrics()); }

std::shared_ptr<obs::MetricsRegistry> PubSub::metrics_registry() const {
  return core_->registry;
}

std::vector<obs::Trace> PubSub::traces() const {
  // Like metrics(): the recorder is internally synchronized, so the facade
  // lock stays out of the export path.
  if (core_->recorder == nullptr) return {};
  return core_->recorder->snapshot();
}

std::string PubSub::traces_json() const {
  if (core_->recorder == nullptr) return obs::traces_json({}, 0, 0);
  return obs::traces_json(*core_->recorder);
}

std::shared_ptr<obs::FlightRecorder> PubSub::trace_recorder() const {
  return core_->recorder;
}

}  // namespace dbsp
