#pragma once

/// \file
/// The `dbsp::PubSub` facade — the stable public entry point of the
/// library. One object owns the schema, the sharded matching engine, the
/// selectivity statistics, and (optionally) the per-shard pruning queues;
/// subscriptions are registered through fluent `Filter`s, DSL text, or raw
/// trees and handed back as RAII `SubscriptionHandle`s whose destruction
/// unsubscribes and releases all pruning state automatically. Errors
/// travel through the Status/Result channel (api/status.hpp), not
/// exceptions. `PubSub::open()` runs the same facade durably: state is
/// recovered from (and every table mutation logged to) a store directory
/// (store/state_store.hpp, docs/ARCHITECTURE.md "Durability").
///
/// Thread safety: a PubSub is safe for concurrent use from any number of
/// threads. Every entry point — publishing, subscribe/unsubscribe churn,
/// pruning maintenance, handle release — is serialized on one internal
/// mutex (annotated with Clang Thread Safety attributes and checked under
/// `-Wthread-safety -Werror`; raced under ThreadSanitizer by
/// tests/concurrent_stress_test.cpp), which is exactly the
/// external-serialization contract the wrapped ShardedEngine and
/// StateStore demand. publish_batch still fans out across shards on the
/// engine's internal pool while the facade lock is held. Callbacks run on
/// the publishing thread *under* that lock: they must not call back into
/// the PubSub or release handles (the mutex is non-recursive — re-entry
/// deadlocks rather than corrupts), and they serialize against all other
/// facade calls.

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "agg/aggregator.hpp"
#include "api/filter.hpp"
#include "api/status.hpp"
#include "core/pruning_set.hpp"
#include "event/event.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "store/state_store.hpp"

namespace dbsp {

namespace api_detail {
struct PubSubCore;
}  // namespace api_detail

/// Construction-time knobs of a PubSub.
struct PubSubOptions {
  /// Shard count / matcher backend of the matching engine.
  ShardedEngineOptions engine;
  /// Enables dimension-based pruning maintenance: every subscription is
  /// admitted to a per-shard pruning queue on subscribe and released on
  /// unsubscribe/handle drop. Requires the Counting backend.
  bool pruning = false;
  /// Dimension / tie-break order / bottom-up restriction of the pruning
  /// queues (used only when `pruning` is set).
  PruneEngineConfig prune;
  /// Enables the aggregation front stage (src/agg/): subscriptions are
  /// clustered into subgroups with bounded per-dimension summaries, and
  /// every publish probes the subgroup summaries before evaluating the
  /// member trees of admitted subgroups. Matching results are identical to
  /// the unaggregated path (summary rejects are sound); match cost and
  /// advertisement bytes scale with subgroups instead of subscriptions.
  /// Composes with pruning and any backend.
  bool aggregation = false;
  /// Aggregation knobs (dimensions, subgroup cap, widening limits); used
  /// only when `aggregation` is set. agg::AggregatorOptions::from_env()
  /// reads the DBSP_AGG_* environment overrides.
  agg::AggregatorOptions agg;
  /// Enables the metrics registry: throughput counters, per-shard match
  /// histograms, phase timings (dbsp_phase_us), and the state synced at
  /// every scrape (subscriptions, WAL lag, pruning gauges). Off: metrics()
  /// returns an empty snapshot and the publish path pays nothing.
  bool metrics = true;
  /// Publish-path trace sampling: every Nth publish has its match and
  /// dispatch phases timed into dbsp_phase_us (1 = every publish). 0 reads
  /// the DBSP_METRICS_SAMPLE environment knob, falling back to 8.
  std::uint32_t metrics_sample = 0;
  /// Enables per-event tracing: every publish carries an obs::TraceContext
  /// (propagated into Notifications and across the wire), head-sampled
  /// publishes collect detailed spans (per-shard match, aggregation probe),
  /// every publish takes coarse stage timings so the tail sampler can
  /// retain the slowest K of the rolling window, and completed traces land
  /// in the flight recorder behind traces()/traces_json(). Off: traces()
  /// is empty and the publish path pays one null check.
  bool tracing = true;
  /// Flight-recorder knobs (ring capacity, 1-in-N head sampling stride,
  /// slowest-K, window). Zero fields resolve from the DBSP_TRACE_*
  /// environment knobs; used only when `tracing` is set.
  obs::FlightRecorderOptions trace;
};

/// One delivered notification: which subscription matched which event.
/// `seq` is the PubSub-assigned publish sequence number. `event` refers to
/// the caller's published event and is valid only for the duration of the
/// callback — copy the Event (not the Notification) to keep it longer.
struct Notification {
  SubscriptionId subscription;
  std::uint64_t seq = 0;
  const Event& event;
  /// The publish's trace context (trace_id 0 when tracing is off) — what a
  /// delivery layer propagates to the subscriber's hop of the trace.
  obs::TraceContext trace{};
  /// Publish wall clock in unix microseconds (0 when tracing is off) — the
  /// base a subscriber-side dbsp_e2e_latency_us observation subtracts.
  std::uint64_t published_unix_us = 0;
};

/// RAII claim on one registration: destruction (or release()) unsubscribes
/// and releases the subscription's pruning state. Move-only. A handle may
/// outlive its PubSub — every operation on it then reports kUnavailable
/// instead of touching freed memory, and destruction is a no-op.
class SubscriptionHandle {
 public:
  /// An empty handle (no registration claim).
  SubscriptionHandle() = default;
  SubscriptionHandle(SubscriptionHandle&& other) noexcept;
  SubscriptionHandle& operator=(SubscriptionHandle&& other) noexcept;
  SubscriptionHandle(const SubscriptionHandle&) = delete;
  SubscriptionHandle& operator=(const SubscriptionHandle&) = delete;
  ~SubscriptionHandle();

  /// The registered id; kInvalid on empty/moved-from/released handles.
  [[nodiscard]] SubscriptionId id() const { return id_; }

  /// True while this handle holds an unreleased claim (the PubSub may
  /// still be gone; see active()).
  [[nodiscard]] bool attached() const { return id_.valid(); }

  /// True iff the claim is live end to end: not released, the PubSub still
  /// exists, and the subscription is still registered there.
  [[nodiscard]] bool active() const;

  /// Unsubscribes now. Errors instead of UB on every misuse: empty or
  /// moved-from handle / double release -> kFailedPrecondition; PubSub
  /// already destroyed -> kUnavailable; id already unsubscribed through
  /// another path -> kNotFound. The handle is empty afterwards either way.
  [[nodiscard]] Status release();

 private:
  friend class PubSub;
  SubscriptionHandle(std::weak_ptr<api_detail::PubSubCore> core, SubscriptionId id)
      : core_(std::move(core)), id_(id) {}

  std::weak_ptr<api_detail::PubSubCore> core_;
  SubscriptionId id_{};
};

/// The facade. See the file comment for the ownership picture.
class PubSub {
 public:
  using Callback = std::function<void(const Notification&)>;

  /// Takes the schema by value: the PubSub is the authority over its event
  /// domain for its whole lifetime. Throws std::logic_error when
  /// options.pruning is combined with a non-Counting backend.
  explicit PubSub(Schema schema, PubSubOptions options = {});
  ~PubSub();

  PubSub(const PubSub&) = delete;
  PubSub& operator=(const PubSub&) = delete;
  /// Movable so Result<PubSub> (and containers) can carry one. A moved-from
  /// PubSub may only be destroyed or assigned to; outstanding handles keep
  /// working against the moved-to object.
  PubSub(PubSub&&) noexcept = default;
  PubSub& operator=(PubSub&&) noexcept = default;

  // --- Durability ----------------------------------------------------------

  /// Opens (or creates) a durable PubSub backed by a store directory: the
  /// subscription table, the trained statistics, and all pruning state are
  /// recovered from snapshot + WAL, and every later subscribe /
  /// unsubscribe / prune / train is logged before the call returns.
  /// Recovered registrations carry no callbacks — re-claim them with
  /// adopt(). Errors: kDataLoss (corrupt or truncated files — never UB),
  /// kIoError (filesystem), kInvalidArgument (schema mismatch, or pruning
  /// with a non-Counting backend), kFailedPrecondition (a recovered filter
  /// the configured backend cannot index), kNotFound (no store and
  /// create_if_missing off).
  [[nodiscard]] static Result<PubSub> open(StoreOptions store,
                                           PubSubOptions options = {});

  /// True while a store is attached and healthy. Durability is fail-stop:
  /// the first failed append detaches the store (leaving it a consistent
  /// prefix of history), the failing call reports the error, and the
  /// PubSub continues in-memory-only.
  [[nodiscard]] bool durable() const;

  /// Forces a compacted snapshot + WAL truncation now (also runs
  /// automatically every StoreOptions::snapshot_every records).
  /// kFailedPrecondition when not durable.
  [[nodiscard]] Status checkpoint();

  /// Durability counters: WAL appends/bytes, snapshots, and what open()
  /// replayed. Zeros when not durable.
  [[nodiscard]] StoreStats store_stats() const;

  [[nodiscard]] const Schema& schema() const;
  /// Convenience: an EventBuilder over this PubSub's schema.
  [[nodiscard]] EventBuilder event() const;

  // --- Subscribing ---------------------------------------------------------

  /// Registers a filter built with the fluent builder. The callback (may
  /// be empty) fires once per matching published event.
  [[nodiscard]] Result<SubscriptionHandle> subscribe(const Filter& filter,
                                                     Callback callback = {});
  /// Registers subscription DSL text (subscription/parser.hpp grammar).
  /// *Every* failure of the text — bad syntax and unknown attributes alike
  /// — reports kParseError with the offending position; only the builder
  /// path distinguishes kNotFound for unknown attributes.
  [[nodiscard]] Result<SubscriptionHandle> subscribe(std::string_view dsl_text,
                                                     Callback callback = {});
  /// Interop entry point for pre-built trees (workload generators, codec).
  [[nodiscard]] Result<SubscriptionHandle> subscribe(std::unique_ptr<Node> tree,
                                                     Callback callback = {});

  /// Id-based unsubscribe (the handle's release() calls this). kNotFound
  /// when the id is not registered.
  [[nodiscard]] Status unsubscribe(SubscriptionId id);

  /// Claims an existing registration — the recovery counterpart of
  /// subscribe(): after open(), walk subscription_ids() and adopt each id
  /// to attach its callback and regain a RAII handle. Replaces any
  /// callback already attached to the id. At most one handle per
  /// registration should be live (a second one releases the same claim;
  /// the loser sees kNotFound). kNotFound for unregistered ids.
  [[nodiscard]] Result<SubscriptionHandle> adopt(SubscriptionId id,
                                                 Callback callback = {});

  [[nodiscard]] bool contains(SubscriptionId id) const;
  [[nodiscard]] std::size_t subscription_count() const;
  /// All registered ids in ascending order (recovery adoption order).
  [[nodiscard]] std::vector<SubscriptionId> subscription_ids() const;

  /// Direct tree evaluation of one registered subscription against an
  /// event — the correctness oracle (bypasses the counting indexes).
  [[nodiscard]] Result<bool> matches(SubscriptionId id, const Event& event) const;
  /// The subscription's current (possibly pruned) expression as DSL text.
  [[nodiscard]] Result<std::string> subscription_text(SubscriptionId id) const;

  // --- Publishing ----------------------------------------------------------

  /// Matches one event, dispatches callbacks in ascending subscription-id
  /// order, and returns the number of notifications.
  std::size_t publish(const Event& event);
  /// The same publish carrying a propagated trace context (wire or overlay
  /// ingress): the facade's spans join the caller's trace instead of
  /// starting a fresh one. An inactive context (trace_id 0) behaves like
  /// plain publish().
  std::size_t publish(const Event& event, obs::TraceContext context);
  /// Batched dispatch through ShardedEngine::match_batch (shards fan out
  /// on the internal pool); returns total notifications over the batch.
  std::uint64_t publish_batch(std::span<const Event> events);

  /// Notifications delivered since construction / the last reset_counters().
  [[nodiscard]] std::uint64_t notifications_delivered() const;

  // --- Pruning maintenance -------------------------------------------------

  /// (Re)trains the selectivity statistics on a sample of events; the
  /// pruning heuristics price candidates against them. Call before bulk
  /// subscribing for meaningful scores, and again (followed by
  /// rescore_all()) when drift_pending() fires.
  [[nodiscard]] Status train(std::span<const Event> sample);

  /// Performs up to `k` prunings across the shard queues.
  [[nodiscard]] Result<std::size_t> prune(std::size_t k);
  /// Prunes each shard to `fraction` (in [0,1]) of its live capacity;
  /// idempotent, cheap to call every churn tick.
  [[nodiscard]] Result<std::size_t> prune_to_fraction(double fraction);

  /// Rebuilds the pruning queues on a new primary dimension, re-reading
  /// every subscription's *current* (possibly already pruned) tree — the
  /// adaptive-dimension hook. Resets the drift trigger.
  [[nodiscard]] Status set_prune_dimension(PruneDimension dimension);

  /// Drift trigger plumbing (see PruningEngine): after `mutations` churn
  /// operations per shard, drift_pending() asks for train() + rescore_all().
  [[nodiscard]] Status set_drift_threshold(std::size_t mutations);
  [[nodiscard]] bool drift_pending() const;
  [[nodiscard]] Status rescore_all();

  struct PruningStats {
    bool enabled = false;
    std::size_t tracked = 0;         ///< subscriptions in the queues
    std::size_t total_possible = 0;  ///< live pruning capacity
    std::size_t performed = 0;
    PruningEngine::MaintenanceCounters maintenance;
  };
  [[nodiscard]] PruningStats pruning_stats() const;

  // --- Aggregation ---------------------------------------------------------

  struct AggregationStats {
    bool enabled = false;
    std::size_t subgroups = 0;         ///< non-empty subgroups
    std::size_t dimensions = 0;        ///< active aggregation dimensions
    std::size_t advertised_bytes = 0;  ///< summary advertisement footprint
    agg::AggregationCounters counters;
  };
  /// Probe/maintenance counters of the aggregation front stage; default
  /// (enabled == false) when PubSubOptions::aggregation is off. train()
  /// also rescores the aggregation dimensions, and drift_pending() folds
  /// in the aggregator's rescore trigger.
  [[nodiscard]] AggregationStats aggregation_stats() const;

  // --- Introspection -------------------------------------------------------

  [[nodiscard]] std::size_t shard_count() const;
  /// Predicate/subscription associations (the memory metric of Fig. 1).
  [[nodiscard]] std::size_t association_count() const;
  /// Deterministic model bytes of all registered subscription trees.
  [[nodiscard]] std::size_t subscription_bytes() const;
  [[nodiscard]] CountingMatcher::Counters counters() const;
  void reset_counters();

  // --- Observability -------------------------------------------------------

  /// A point-in-time snapshot of every registered metric series: the
  /// registry's own counters/histograms plus the scrape-time sync of the
  /// legacy stat structs (subscriptions, engine counters, store stats,
  /// pruning gauges). Empty when PubSubOptions::metrics is off. Safe to
  /// call concurrently with publishing — never blocks the hot path.
  [[nodiscard]] obs::MetricsSnapshot metrics() const;
  /// The same snapshot rendered as JSON (see obs/exposition.hpp for the
  /// shape). `{"metrics": []}` when metrics are disabled.
  [[nodiscard]] std::string metrics_json() const;
  /// The shared registry behind metrics() — null when metrics are
  /// disabled. Embedding layers (the network server) register their own
  /// series here so one scrape exports the whole process.
  [[nodiscard]] std::shared_ptr<obs::MetricsRegistry> metrics_registry() const;

  /// Every trace currently readable from the flight recorder, oldest
  /// first: head-sampled publishes plus the tail-admitted slowest of the
  /// rolling window. Empty when PubSubOptions::tracing is off. Lock-free —
  /// never blocks the publish path.
  [[nodiscard]] std::vector<obs::Trace> traces() const;
  /// The same traces rendered as JSON (see obs/flight.hpp for the shape).
  /// `{"traces": [], ...}` when tracing is disabled.
  [[nodiscard]] std::string traces_json() const;
  /// The shared flight recorder behind traces() — null when tracing is
  /// disabled. Embedding layers (the network server) record their own
  /// hop entries here so one pull exports the whole process's spans.
  [[nodiscard]] std::shared_ptr<obs::FlightRecorder> trace_recorder() const;

 private:
  explicit PubSub(std::shared_ptr<api_detail::PubSubCore> core)
      : core_(std::move(core)) {}

  std::shared_ptr<api_detail::PubSubCore> core_;
};

}  // namespace dbsp
