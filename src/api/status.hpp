#pragma once

/// \file
/// The public API's error channel: a `Status` code/message pair and a
/// small `Result<T>` (value-or-Status) in the spirit of std::expected.
/// Facade entry points that can fail return these instead of throwing, so
/// subscribe/unsubscribe churn loops stay exception-free; programming
/// errors (null trees, misuse of internals) still throw inside the core.

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace dbsp {

/// Coarse error taxonomy of the public API.
enum class ErrorCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument,     ///< malformed filter, bad operand type, bad fraction...
  kNotFound,            ///< unknown subscription id
  kFailedPrecondition,  ///< operation needs state the object is not in
  kUnavailable,         ///< the backing PubSub is gone (handle outlived it)
  kParseError,          ///< subscription DSL text did not parse
  kDataLoss,            ///< durable store is corrupt or truncated
  kIoError,             ///< filesystem operation failed
};

[[nodiscard]] constexpr const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kInvalidArgument: return "invalid argument";
    case ErrorCode::kNotFound: return "not found";
    case ErrorCode::kFailedPrecondition: return "failed precondition";
    case ErrorCode::kUnavailable: return "unavailable";
    case ErrorCode::kParseError: return "parse error";
    case ErrorCode::kDataLoss: return "data loss";
    case ErrorCode::kIoError: return "io error";
  }
  return "?";
}

/// Success or an (code, message) error. Default-constructed = ok.
class [[nodiscard]] Status {
 public:
  Status() = default;

  [[nodiscard]] static Status error(ErrorCode code, std::string message) {
    Status s;
    s.code_ = code == ErrorCode::kOk ? ErrorCode::kFailedPrecondition : code;
    s.message_ = std::move(message);
    return s;
  }

  [[nodiscard]] bool ok() const { return code_ == ErrorCode::kOk; }
  explicit operator bool() const { return ok(); }
  [[nodiscard]] ErrorCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }

  /// "ok" or "<code>: <message>" — for logs and test failure output.
  [[nodiscard]] std::string to_string() const {
    if (ok()) return "ok";
    return std::string(dbsp::to_string(code_)) + ": " + message_;
  }

  /// Throws std::logic_error when not ok — for call sites (examples,
  /// scenario infrastructure) where failure is a programming error and a
  /// `(void)` discard would silently swallow a real bug.
  void expect_ok() const {
    if (!ok()) throw std::logic_error("unexpected Status: " + to_string());
  }

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

/// A value or the Status explaining why there is none.
template <class T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    if (status_.ok()) {
      throw std::logic_error("Result: constructed from an ok Status without a value");
    }
  }

  [[nodiscard]] bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }
  [[nodiscard]] const Status& status() const { return status_; }

  /// Access the value; throws std::logic_error when !ok() (a caller bug —
  /// check ok() or status() first).
  [[nodiscard]] T& value() & { return checked(); }
  [[nodiscard]] const T& value() const& { return const_cast<Result*>(this)->checked(); }
  [[nodiscard]] T&& value() && { return std::move(checked()); }

  /// The value, or `fallback` when this holds an error.
  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? *value_ : std::move(fallback);
  }

  [[nodiscard]] T* operator->() { return &checked(); }
  [[nodiscard]] const T* operator->() const { return &const_cast<Result*>(this)->checked(); }

 private:
  T& checked() {
    if (!value_) {
      throw std::logic_error("Result: value() on error — " + status_.to_string());
    }
    return *value_;
  }

  Status status_;
  std::optional<T> value_;
};

}  // namespace dbsp
