// Micro-benchmarks of the selectivity substrate: statistics training,
// predicate estimation and tree-level interval estimation.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "selectivity/estimator.hpp"
#include "selectivity/stats.hpp"
#include "workload/event_gen.hpp"
#include "workload/subscription_gen.hpp"

namespace {

using namespace dbsp;

void BM_StatsTraining(benchmark::State& state) {
  WorkloadConfig cfg;
  const AuctionDomain domain(cfg);
  AuctionEventGenerator gen(domain, 3);
  const auto events = gen.generate(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    EventStats stats(domain.schema());
    for (const auto& e : events) stats.observe(e);
    stats.finalize();
    benchmark::DoNotOptimize(stats.events_observed());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_StatsTraining)->Arg(1000)->Arg(10000);

void BM_PredicateEstimate(benchmark::State& state) {
  WorkloadConfig cfg;
  const AuctionDomain domain(cfg);
  EventStats stats(domain.schema());
  AuctionEventGenerator gen(domain, 3);
  for (int i = 0; i < 10000; ++i) stats.observe(gen.next());
  stats.finalize();

  // Sample predicates out of generated subscriptions.
  AuctionSubscriptionGenerator sub_gen(domain, 1);
  std::vector<Predicate> preds;
  for (int i = 0; i < 200; ++i) {
    sub_gen.next_tree()->for_each_leaf(
        [&](const Node& leaf) { preds.push_back(leaf.predicate()); });
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats.predicate_selectivity(preds[i++ % preds.size()]));
  }
}
BENCHMARK(BM_PredicateEstimate);

void BM_TreeEstimate(benchmark::State& state) {
  WorkloadConfig cfg;
  const AuctionDomain domain(cfg);
  EventStats stats(domain.schema());
  AuctionEventGenerator gen(domain, 3);
  for (int i = 0; i < 10000; ++i) stats.observe(gen.next());
  stats.finalize();
  const SelectivityEstimator estimator(stats);

  AuctionSubscriptionGenerator sub_gen(domain, 1);
  const auto trees = sub_gen.generate(512);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator.estimate(*trees[i++ % trees.size()]));
  }
}
BENCHMARK(BM_TreeEstimate);

}  // namespace

BENCHMARK_MAIN();
