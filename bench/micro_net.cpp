// Network-edge microbenchmarks: an in-process NetServer on an ephemeral
// loopback port, driven by the blocking DbspClient. Prices the full wire
// path — frame encode, kernel loopback round-trip, epoll wake, dispatch,
// reply — on top of the facade numbers from micro_api. bench_runner.py
// summarizes ping RTT and publish throughput into BENCH_net.json.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "dbsp/dbsp.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "workload/event_gen.hpp"
#include "workload/subscription_gen.hpp"

namespace {

using namespace dbsp;
using net::DbspClient;
using net::NetServer;
using net::NetServerOptions;

constexpr std::size_t kSubs = 1000;
constexpr std::size_t kEvents = 256;

struct Harness {
  std::unique_ptr<AuctionDomain> domain;
  std::vector<Event> events;
  std::vector<SubscriptionHandle> handles;
  std::unique_ptr<NetServer> server;
  std::unique_ptr<DbspClient> client;

  explicit Harness(std::size_t n_subs) {
    WorkloadConfig cfg;
    cfg.seed = 7;
    domain = std::make_unique<AuctionDomain>(cfg);
    events = AuctionEventGenerator(*domain, 2).generate(kEvents);

    PubSub pubsub(domain->schema());
    AuctionSubscriptionGenerator sub_gen(*domain, 1);
    handles.reserve(n_subs);
    for (std::size_t i = 0; i < n_subs; ++i) {
      // Handles outlive the facade's move into the server; dropping one
      // after the server is gone is a safe no-op.
      handles.push_back(pubsub.subscribe(sub_gen.next_tree()).value());
    }
    NetServerOptions options;  // ephemeral port
    server = NetServer::start(std::move(pubsub), options).value();
    client = std::make_unique<DbspClient>(
        DbspClient::connect("127.0.0.1", server->port()).value());
  }
};

// One iteration = one ping round-trip: the floor for any request verb
// (frame out, epoll wake, dispatch, frame back).
void BM_NetPingRoundTrip(benchmark::State& state) {
  Harness h(0);
  std::uint64_t token = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.client->ping(++token).value());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_NetPingRoundTrip)->Unit(benchmark::kMicrosecond)->UseRealTime();

// One iteration = one event published over the wire against kSubs
// engine-resident subscriptions (no notification fan-out back).
void BM_NetPublish(benchmark::State& state) {
  Harness h(kSubs);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.client->publish(h.events[i]).value());
    i = (i + 1) % h.events.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_NetPublish)->Unit(benchmark::kMicrosecond)->UseRealTime();

// One iteration = one 256-event batch in a single frame — amortizes the
// round-trip the way dbsp-cli and the scenario sockets transport do.
void BM_NetPublishBatch(benchmark::State& state) {
  Harness h(kSubs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(h.client->publish_batch(h.events).value());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(h.events.size()));
}
BENCHMARK(BM_NetPublishBatch)->Unit(benchmark::kMicrosecond)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
