// Metrics-overhead microbenchmark: (a) the raw record primitives — one
// Counter::add and one striped Histogram::record — (b) the scrape cost of
// a realistically sized registry snapshot, and (c) the contract that
// matters: the same 10k-subscription auction publish_batch workload with
// metrics on (default sampling) vs metrics off. bench_runner.py
// summarizes (c) as `metrics_overhead` in BENCH_micro.json and the CI
// bench smoke gates on it — the documented budget is <= 5%.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "dbsp/dbsp.hpp"
#include "obs/metrics.hpp"
#include "workload/event_gen.hpp"
#include "workload/subscription_gen.hpp"

namespace {

using namespace dbsp;

struct Fixture {
  WorkloadConfig cfg;
  std::unique_ptr<AuctionDomain> domain;
  std::vector<Event> events;

  Fixture(std::size_t n_events) {
    cfg.seed = 7;
    domain = std::make_unique<AuctionDomain>(cfg);
    events = AuctionEventGenerator(*domain, 2).generate(n_events);
  }
};

constexpr std::size_t kSubs = 10000;
constexpr std::size_t kEvents = 256;

void BM_CounterAdd(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::Counter& c = registry.counter("dbsp_bench_total");
  for (auto _ : state) {
    c.add(1);
  }
  benchmark::DoNotOptimize(c.value());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CounterAdd)->Unit(benchmark::kNanosecond);

void BM_HistogramRecord(benchmark::State& state) {
  obs::MetricsRegistry registry;
  obs::Histogram& h = registry.histogram("dbsp_bench_us");
  double v = 0.0;
  for (auto _ : state) {
    h.record(v);
    v = v < 4096.0 ? v + 1.0 : 0.0;  // sweep the buckets
  }
  benchmark::DoNotOptimize(h.snapshot().count);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HistogramRecord)->Unit(benchmark::kNanosecond);

// One monitoring scrape of a registry shaped like a live broker's (a few
// dozen counters/gauges, per-shard + phase histograms).
void BM_MetricsSnapshot(benchmark::State& state) {
  obs::MetricsRegistry registry;
  for (int i = 0; i < 30; ++i) {
    registry.counter("dbsp_bench_c" + std::to_string(i) + "_total").add(i);
  }
  for (int i = 0; i < 10; ++i) {
    registry.gauge("dbsp_bench_g" + std::to_string(i)).set(i);
  }
  for (int shard = 0; shard < 8; ++shard) {
    obs::Histogram& h = registry.histogram(
        "dbsp_bench_us", {{"shard", std::to_string(shard)}});
    for (int i = 0; i < 1000; ++i) h.record(static_cast<double>(i));
  }
  for (auto _ : state) {
    const obs::MetricsSnapshot snapshot = registry.snapshot();
    benchmark::DoNotOptimize(snapshot.metrics.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MetricsSnapshot)->Unit(benchmark::kMicrosecond);

// The overhead contract pair: identical workload to micro_api's
// BM_PubSubPublishBatch, with the registry live (default sampling) vs
// disabled. bench_runner.py reports on/off as `metrics_overhead`.
void publish_batch_bench(benchmark::State& state, bool metrics) {
  Fixture fx(kEvents);
  PubSubOptions options;
  options.engine.shards = static_cast<std::size_t>(state.range(0));
  options.metrics = metrics;
  PubSub pubsub(fx.domain->schema(), options);
  AuctionSubscriptionGenerator sub_gen(*fx.domain, 1);
  std::vector<SubscriptionHandle> handles;
  handles.reserve(kSubs);
  for (std::uint32_t i = 0; i < kSubs; ++i) {
    handles.push_back(pubsub.subscribe(sub_gen.next_tree()).value());
  }

  for (auto _ : state) {
    const std::uint64_t delivered = pubsub.publish_batch(fx.events);
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(fx.events.size()));
}

void BM_PublishBatchMetricsOn(benchmark::State& state) {
  publish_batch_bench(state, /*metrics=*/true);
}
BENCHMARK(BM_PublishBatchMetricsOn)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMicrosecond)->UseRealTime();

void BM_PublishBatchMetricsOff(benchmark::State& state) {
  publish_batch_bench(state, /*metrics=*/false);
}
BENCHMARK(BM_PublishBatchMetricsOff)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMicrosecond)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
