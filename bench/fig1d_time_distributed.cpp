// Figure 1(d): time efficiency (distributed, 5-broker line) — summed broker
// filtering time per published event. Paper shape: eff leads early, sel
// wins overall (4.2ms vs 6.5ms at the paper's scale — 35% faster) because
// additionally routed events must be post-filtered at several brokers;
// mem shows no improvement.

#include <iostream>

#include "fig_common.hpp"

int main() {
  using namespace dbsp;
  const auto cfg = bench::distributed_config_from_env();
  bench::print_scale_banner(cfg.subscriptions, cfg.events);
  const auto series = bench::distributed_series(
      cfg, "Time", [](const DistributedPoint& p) { return p.filter_time_per_event; });
  print_figure(std::cout, "Fig 1(d): Time efficiency (distributed)",
               "proportional number of prunings", "filtering time per event [s]",
               series);
  return 0;
}
