// Figure 1(a): time efficiency (centralized) — average filtering time per
// event vs the proportional number of prunings, one curve per heuristic.
// Paper shape: eff fastest up to ~43% of prunings, then sel overtakes;
// mem is the slowest throughout.

#include <iostream>

#include "fig_common.hpp"

int main() {
  using namespace dbsp;
  const auto cfg = bench::centralized_config_from_env();
  bench::print_scale_banner(cfg.subscriptions, cfg.events);
  const auto series = bench::centralized_series(
      cfg, "Time", [](const CentralizedPoint& p) { return p.filter_time_per_event; });
  print_figure(std::cout, "Fig 1(a): Time efficiency (centralized)",
               "proportional number of prunings", "filtering time per event [s]",
               series);
  return 0;
}
