// Ablation A1: the §3.4 priority-queue scheme vs a naive full rescan that
// re-scores every subscription's candidates before each pruning. Both pick
// the same prunings (greedy over the same composite key); the queue pays
// O(log n) per step after an O(n) build, the rescan O(n · candidates) per
// step. Prints selection wall time and verifies the chosen sequences agree.

#include <cstdio>
#include <memory>
#include <vector>

#include "common/env.hpp"
#include "common/timer.hpp"
#include "core/engine.hpp"
#include "selectivity/estimator.hpp"
#include "selectivity/stats.hpp"
#include "workload/event_gen.hpp"
#include "workload/subscription_gen.hpp"

namespace {

using namespace dbsp;

std::vector<std::unique_ptr<Subscription>> make_subs(const AuctionDomain& domain,
                                                     std::size_t n) {
  AuctionSubscriptionGenerator gen(domain, 1);
  std::vector<std::unique_ptr<Subscription>> subs;
  subs.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    subs.push_back(std::make_unique<Subscription>(SubscriptionId(i), gen.next_tree()));
  }
  return subs;
}

/// Naive baseline: before every pruning, enumerate and score candidates of
/// every subscription, pick the lexicographically best. Returns the chosen
/// composite keys in order.
std::vector<std::array<double, 3>> naive_rescan(
    std::vector<std::unique_ptr<Subscription>>& subs,
    const SelectivityEstimator& estimator, std::size_t steps) {
  const HeuristicScorer scorer(estimator);
  const auto order = default_order(PruneDimension::NetworkLoad);
  std::vector<OriginalProfile> originals;
  originals.reserve(subs.size());
  for (const auto& s : subs) originals.push_back(scorer.profile(s->root()));

  std::vector<std::array<double, 3>> keys;
  for (std::size_t step = 0; step < steps; ++step) {
    bool found = false;
    std::array<double, 3> best_key{};
    std::size_t best_sub = 0;
    Node::Path best_path;
    for (std::size_t i = 0; i < subs.size(); ++i) {
      for (const auto& path : enumerate_prunings(subs[i]->root())) {
        const auto key =
            composite_key(scorer.score(subs[i]->root(), path, originals[i]), order);
        if (!found || key < best_key) {
          found = true;
          best_key = key;
          best_sub = i;
          best_path = path;
        }
      }
    }
    if (!found) break;
    apply_pruning(*subs[best_sub], best_path);
    keys.push_back(best_key);
  }
  return keys;
}

}  // namespace

int main() {
  const auto n_subs = static_cast<std::size_t>(env_int("DBSP_SUBS", 1500));
  const auto steps = static_cast<std::size_t>(env_int("DBSP_PRUNINGS", 600));

  const WorkloadConfig wl;
  const AuctionDomain domain(wl);
  EventStats stats(domain.schema());
  AuctionEventGenerator training(domain, 3);
  for (int i = 0; i < 8000; ++i) stats.observe(training.next());
  stats.finalize();
  const SelectivityEstimator estimator(stats);

  std::printf("=== Ablation A1: priority queue vs naive rescan ===\n");
  std::printf("%zu subscriptions, %zu prunings, network dimension\n\n", n_subs, steps);

  // Priority queue (the paper's scheme).
  auto queue_subs = make_subs(domain, n_subs);
  PruneEngineConfig cfg;
  cfg.dimension = PruneDimension::NetworkLoad;
  Stopwatch queue_watch;
  queue_watch.start();
  PruningEngine engine(estimator, cfg);
  for (auto& s : queue_subs) engine.register_subscription(*s);
  const std::size_t queue_done = engine.prune(steps);
  queue_watch.stop();

  // Naive rescan baseline.
  auto naive_subs = make_subs(domain, n_subs);
  Stopwatch naive_watch;
  naive_watch.start();
  const auto naive_keys = naive_rescan(naive_subs, estimator, steps);
  naive_watch.stop();

  std::printf("%-18s %12s %14s\n", "strategy", "prunings", "seconds");
  std::printf("%-18s %12zu %14.4f\n", "priority_queue", queue_done, queue_watch.seconds());
  std::printf("%-18s %12zu %14.4f\n", "naive_rescan", naive_keys.size(),
              naive_watch.seconds());
  std::printf("speedup: %.1fx\n\n", naive_watch.seconds() / queue_watch.seconds());

  // Both are greedy over the same objective: the sequence of chosen
  // composite keys must agree step for step (tie *victims* may differ).
  const auto order = default_order(PruneDimension::NetworkLoad);
  std::size_t agree = 0;
  const std::size_t comparable = std::min(naive_keys.size(), engine.history().size());
  for (std::size_t i = 0; i < comparable; ++i) {
    const auto queue_key = composite_key(engine.history()[i].scores, order);
    bool same = true;
    for (int k = 0; k < 3; ++k) {
      if (std::abs(queue_key[k] - naive_keys[i][k]) > 1e-9) same = false;
    }
    if (same) ++agree;
  }
  std::printf("identical greedy key sequence: %zu / %zu steps\n", agree, comparable);
  // Exact ties between structurally different subscriptions can make the
  // two greedy runs diverge benignly; demand near-perfect agreement.
  return (agree >= comparable - comparable / 100 && queue_done == naive_keys.size())
             ? 0
             : 1;
}
