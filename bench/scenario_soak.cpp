// Scenario soak bench: runs the ScenarioRunner's standard 4-phase soak
// (warmup -> churn -> flash crowd -> drain, pruning maintenance on) for
// every workload domain at the configured shard counts, plus one broker-
// overlay run per domain, and prints a machine-readable JSON report to
// stdout (consumed by tools/bench_runner.py into BENCH_scenario.json).
// Exits non-zero when any run reports an oracle mismatch, so CI can gate
// on delivery exactness.
//
// Knobs: DBSP_SCENARIO_SUBS (default 1500), DBSP_SCENARIO_EVENTS (events
// per phase, default 1000), DBSP_SCENARIO_SHARDS (csv, default "1,4"),
// DBSP_SCENARIO_BROKERS (overlay size, 0 skips the overlay run, default 3),
// DBSP_SCENARIO_DOMAINS (csv, default all), DBSP_SCENARIO_DRIFT (drift
// threshold, default 200), DBSP_SCENARIO_CHECK_EVERY (centralized oracle
// sampling, default 7), DBSP_SCENARIO_RECOVER (default 1: one extra
// store-backed kill-and-recover run per domain — crash mid-churn and
// mid-flash-crowd, reopen, assert oracle exactness — reporting recovery
// timings and replayed WAL record counts), DBSP_SCENARIO_AGGREGATION
// (default 0: enable the src/agg/ aggregation front stage on every
// centralized run, with the DBSP_AGG_* knobs honored), DBSP_SCENARIO_TRANSPORT
// ("inprocess" default, or "sockets": drive every run through a real
// NetServer over loopback TCP — pruning is forced off and the overlay
// runs are skipped, both unsupported by the sockets transport),
// DBSP_SCENARIO_TRACING (default 0, sockets only: flight-record every
// publish with DBSP_TRACE_* sampling and report two-sided span coverage
// in a "tracing" object per run).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "common/env.hpp"
#include "scenario/scenario_runner.hpp"

namespace {

using namespace dbsp;

std::vector<std::string> split_csv(const char* name, const std::string& fallback) {
  const char* raw = std::getenv(name);
  std::string s = (raw != nullptr && *raw != '\0') ? raw : fallback;
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= s.size()) {
    const std::size_t comma = s.find(',', start);
    const std::string item = s.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!item.empty()) out.push_back(item);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

void print_phase(const ScenarioPhaseReport& p, bool last) {
  std::printf(
      "        {\"name\": \"%s\", \"events\": %zu, \"subscribes\": %zu, "
      "\"unsubscribes\": %zu, \"prunings\": %zu, \"drift_retrains\": %zu, "
      "\"live_subscriptions\": %zu, \"associations\": %zu, \"matches\": %llu, "
      "\"oracle_checked\": %zu, \"oracle_mismatches\": %zu, "
      "\"match_seconds\": %.6f, \"wall_seconds\": %.6f, "
      "\"recoveries\": %zu, \"recovery_seconds\": %.6f, "
      "\"recovered_subscriptions\": %zu, \"replayed_wal_records\": %llu}%s\n",
      p.name.c_str(), p.events, p.subscribes, p.unsubscribes, p.prunings,
      p.drift_retrains, p.live_subscriptions, p.associations,
      static_cast<unsigned long long>(p.matches), p.oracle_checked,
      p.oracle_mismatches, p.match_seconds, p.wall_seconds, p.recoveries,
      p.recovery_seconds, p.recovered_subscriptions,
      static_cast<unsigned long long>(p.replayed_wal_records), last ? "" : ",");
}

void print_run(const ScenarioReport& r, bool last) {
  const double match_s = r.total_match_seconds();
  const double wall_s = r.total_wall_seconds();
  const double events_per_sec =
      match_s > 0.0 ? static_cast<double>(r.total_events()) / match_s : 0.0;
  const double churn_per_sec =
      wall_s > 0.0 ? static_cast<double>(r.total_churn_ops()) / wall_s : 0.0;
  std::printf("    {\n");
  std::printf("      \"domain\": \"%s\", \"mode\": \"%s\", \"shards\": %zu,\n",
              r.domain.c_str(), r.mode.c_str(), r.shards);
  std::printf("      \"exact\": %s, \"oracle_mismatches\": %zu,\n",
              r.exact() ? "true" : "false", r.total_mismatches());
  if (r.total_recoveries() > 0) {
    const std::uint64_t replayed = r.total_replayed_wal_records();
    const double rec_s = r.total_recovery_seconds();
    std::printf(
        "      \"recovery\": {\"recoveries\": %zu, \"recovery_seconds\": %.6f, "
        "\"replayed_wal_records\": %llu, \"replayed_records_per_sec\": %.1f},\n",
        r.total_recoveries(), rec_s, static_cast<unsigned long long>(replayed),
        rec_s > 0.0 ? static_cast<double>(replayed) / rec_s : 0.0);
  }
  std::printf("      \"events\": %zu, \"churn_ops\": %zu,\n", r.total_events(),
              r.total_churn_ops());
  std::printf("      \"events_per_sec\": %.1f, \"churn_ops_per_sec\": %.1f,\n",
              events_per_sec, churn_per_sec);
  std::printf(
      "      \"maintenance\": {\"admissions\": %llu, \"releases\": %llu, "
      "\"queue_compactions\": %llu, \"full_rescores\": %llu},\n",
      static_cast<unsigned long long>(r.maintenance.admissions),
      static_cast<unsigned long long>(r.maintenance.releases),
      static_cast<unsigned long long>(r.maintenance.queue_compactions),
      static_cast<unsigned long long>(r.maintenance.full_rescores));
  if (!r.metrics_json.empty()) {
    // metrics_json is already a JSON object — embed it verbatim.
    std::printf("      \"metrics\": %s,\n", r.metrics_json.c_str());
    std::printf("      \"scrape_cost_us\": %.3f,\n", r.scrape_cost_us);
  }
  if (r.traced_publishes > 0) {
    std::printf(
        "      \"tracing\": {\"traced_publishes\": %zu, "
        "\"sampled_publishes\": %zu, \"client_traces\": %zu, "
        "\"server_traces\": %zu, \"joined_traces\": %zu, "
        "\"e2e_latency_samples\": %llu},\n",
        r.traced_publishes, r.sampled_publishes, r.client_traces,
        r.server_traces, r.joined_traces,
        static_cast<unsigned long long>(r.e2e_latency_samples));
  }
  std::printf("      \"phases\": [\n");
  for (std::size_t i = 0; i < r.phases.size(); ++i) {
    print_phase(r.phases[i], i + 1 == r.phases.size());
  }
  std::printf("      ]\n    }%s\n", last ? "" : ",");
}

}  // namespace

int main() {
  const auto subs = static_cast<std::size_t>(env_int("DBSP_SCENARIO_SUBS", 1500));
  const auto events = static_cast<std::size_t>(env_int("DBSP_SCENARIO_EVENTS", 1000));
  const auto brokers = static_cast<std::size_t>(env_int("DBSP_SCENARIO_BROKERS", 3));
  const auto drift = static_cast<std::size_t>(env_int("DBSP_SCENARIO_DRIFT", 200));
  const auto check_every =
      static_cast<std::size_t>(env_int("DBSP_SCENARIO_CHECK_EVERY", 7));
  const bool recover = env_bool("DBSP_SCENARIO_RECOVER", true);
  const bool aggregation = env_bool("DBSP_SCENARIO_AGGREGATION", false);
  const bool tracing = env_bool("DBSP_SCENARIO_TRACING", false);
  const char* transport_raw = std::getenv("DBSP_SCENARIO_TRANSPORT");
  const std::string transport =
      (transport_raw != nullptr && *transport_raw != '\0') ? transport_raw
                                                           : "inprocess";
  if (transport != "inprocess" && transport != "sockets") {
    std::fprintf(stderr,
                 "[scenario_soak] bad DBSP_SCENARIO_TRANSPORT: '%s' "
                 "(expected 'inprocess' or 'sockets')\n",
                 transport.c_str());
    return 2;
  }
  const bool sockets = transport == "sockets";
  const auto domains = split_csv("DBSP_SCENARIO_DOMAINS", "auction,stock,iot");
  std::vector<std::size_t> shard_counts;
  for (const auto& s : split_csv("DBSP_SCENARIO_SHARDS", "1,4")) {
    // Fail loudly on malformed entries: silently coercing "x4" to 0 would
    // drop the multi-shard coverage this knob exists for.
    char* end = nullptr;
    const unsigned long long n = std::strtoull(s.c_str(), &end, 10);
    if (end == s.c_str() || *end != '\0' || n == 0) {
      std::fprintf(stderr, "[scenario_soak] bad DBSP_SCENARIO_SHARDS entry: '%s'\n",
                   s.c_str());
      return 2;
    }
    shard_counts.push_back(static_cast<std::size_t>(n));
  }

  for (const auto& name : domains) {
    const auto& known = workload_names();
    if (std::find(known.begin(), known.end(), name) == known.end()) {
      std::fprintf(stderr, "[scenario_soak] bad DBSP_SCENARIO_DOMAINS entry: '%s'\n",
                   name.c_str());
      return 2;
    }
  }

  std::vector<ScenarioReport> reports;
  for (const auto& name : domains) {
    const auto domain = make_workload(name);
    for (const std::size_t shards : shard_counts) {
      ScenarioConfig config = ScenarioConfig::soak(subs, events);
      config.shards = shards;
      config.drift_threshold = drift;
      config.check_every = check_every;
      if (sockets) {
        config.transport = ScenarioTransport::kSockets;
        config.pruning = false;  // the wire oracle holds unpruned clones
        config.tracing = tracing;
      } else {
        config.aggregation = aggregation;
      }
      std::fprintf(stderr, "[scenario_soak] %s %s N=%zu ...\n", name.c_str(),
                   sockets ? "sockets" : "centralized", shards);
      reports.push_back(ScenarioRunner(*domain, config).run());
    }
    if (brokers > 0 && !sockets) {
      // Overlay exactness check at a reduced scale: every publish floods
      // the line to quiescence, so per-event cost is brokers x higher.
      ScenarioConfig config = ScenarioConfig::soak(subs / 2, events / 2);
      config.brokers = brokers;
      config.shards = shard_counts.front();
      config.drift_threshold = drift;
      std::fprintf(stderr, "[scenario_soak] %s overlay B=%zu ...\n", name.c_str(),
                   brokers);
      reports.push_back(ScenarioRunner(*domain, config).run());
    }
    if (recover) {
      // Store-backed kill-and-recover: crash mid-churn and mid-flash-crowd,
      // reopen from snapshot + WAL, and keep asserting oracle exactness.
      namespace fs = std::filesystem;
      // Per-process scratch path: concurrent soaks (parallel CI jobs on one
      // runner) must not delete each other's live store.
#if defined(__unix__) || defined(__APPLE__)
      const std::string owner = std::to_string(::getpid());
#else
      const std::string owner = "0";
#endif
      const fs::path store_dir =
          fs::temp_directory_path() / ("dbsp_soak_store_" + owner + "_" + name);
      fs::remove_all(store_dir);
      ScenarioConfig config = ScenarioConfig::soak(subs / 2, events / 2);
      config.shards = shard_counts.front();
      config.drift_threshold = drift;
      config.check_every = check_every;
      config.store_directory = store_dir.string();
      config.kill_recover_phases = {1, 2};
      if (sockets) {
        config.transport = ScenarioTransport::kSockets;
        config.pruning = false;
        config.tracing = tracing;
      } else {
        config.aggregation = aggregation;
      }
      std::fprintf(stderr, "[scenario_soak] %s kill-and-recover (%s) ...\n",
                   name.c_str(), transport.c_str());
      reports.push_back(ScenarioRunner(*domain, config).run());
      std::error_code cleanup_ec;
      fs::remove_all(store_dir, cleanup_ec);
    }
  }

  bool exact = true;
  for (const auto& r : reports) exact = exact && r.exact();

  std::printf("{\n  \"schema_version\": 1,\n");
  std::printf(
      "  \"config\": {\"subs\": %zu, \"events_per_phase\": %zu, \"brokers\": %zu, "
      "\"drift_threshold\": %zu, \"check_every\": %zu, \"recover\": %s, "
      "\"aggregation\": %s, \"transport\": \"%s\", \"tracing\": %s},\n",
      subs, events, brokers, drift, check_every, recover ? "true" : "false",
      aggregation ? "true" : "false", transport.c_str(),
      tracing ? "true" : "false");
  std::printf("  \"exact\": %s,\n", exact ? "true" : "false");
  std::printf("  \"runs\": [\n");
  for (std::size_t i = 0; i < reports.size(); ++i) {
    print_run(reports[i], i + 1 == reports.size());
  }
  std::printf("  ]\n}\n");

  if (!exact) {
    std::fprintf(stderr, "[scenario_soak] ORACLE MISMATCH — delivery not exact\n");
    return 1;
  }
  std::fprintf(stderr, "[scenario_soak] all %zu runs exact\n", reports.size());
  return 0;
}
