// Figure 1(c): memory usage (centralized) — proportional reduction in
// predicate/subscription associations (all subscriptions) vs pruning
// fraction. Paper shape: mem reduces fastest early (up to ~10% ahead),
// heuristics converge after ~70% of prunings.

#include <iostream>

#include "fig_common.hpp"

int main() {
  using namespace dbsp;
  const auto cfg = bench::centralized_config_from_env();
  bench::print_scale_banner(cfg.subscriptions, cfg.events);
  const auto series = bench::centralized_series(
      cfg, "Memory",
      [](const CentralizedPoint& p) { return p.association_reduction; });
  print_figure(std::cout, "Fig 1(c): Memory usage (centralized)",
               "proportional number of prunings",
               "prop. reduction in pred/sub assoc.", series);
  return 0;
}
