// Ablation A2: value of the pmin evaluation trigger (ref [2]) inside the
// counting matcher — the mechanism the throughput heuristic Δ≈eff protects.
// Matches the same workload with the trigger on and off and reports tree
// evaluations and wall time, at three pruning depths of the throughput
// heuristic (pruning lowers pmin, so the trigger's value shrinks as
// pruning proceeds — exactly the effect Δ≈eff fights).

#include <cstdio>
#include <memory>
#include <vector>

#include "common/env.hpp"
#include "common/timer.hpp"
#include "core/engine.hpp"
#include "filter/counting_matcher.hpp"
#include "selectivity/estimator.hpp"
#include "selectivity/stats.hpp"
#include "workload/event_gen.hpp"
#include "workload/subscription_gen.hpp"

int main() {
  using namespace dbsp;
  const auto n_subs = static_cast<std::size_t>(env_int("DBSP_SUBS", 8000));
  const auto n_events = static_cast<std::size_t>(env_int("DBSP_EVENTS", 2000));

  const WorkloadConfig wl;
  const AuctionDomain domain(wl);
  EventStats stats(domain.schema());
  AuctionEventGenerator training(domain, 3);
  for (int i = 0; i < 10000; ++i) stats.observe(training.next());
  stats.finalize();
  const SelectivityEstimator estimator(stats);
  AuctionEventGenerator event_gen(domain, 2);
  const auto events = event_gen.generate(n_events);

  std::printf("=== Ablation A2: pmin evaluation trigger ===\n");
  std::printf("%zu subscriptions, %zu events, throughput-dimension pruning\n\n",
              n_subs, n_events);
  std::printf("%-10s %-9s %16s %16s %12s\n", "fraction", "trigger", "evaluations",
              "matches", "ms/event");

  AuctionSubscriptionGenerator sub_gen(domain, 1);
  std::vector<std::unique_ptr<Subscription>> subs;
  CountingMatcher matcher(domain.schema());
  for (std::uint32_t i = 0; i < n_subs; ++i) {
    subs.push_back(std::make_unique<Subscription>(SubscriptionId(i), sub_gen.next_tree()));
    matcher.add(*subs.back());
  }
  PruneEngineConfig cfg;
  cfg.dimension = PruneDimension::Throughput;
  PruningEngine engine(estimator, cfg, &matcher);
  for (auto& s : subs) engine.register_subscription(*s);

  std::uint64_t mismatches = 0;
  for (const double fraction : {0.0, 0.4, 0.8}) {
    const auto target =
        static_cast<std::size_t>(fraction * static_cast<double>(engine.total_possible()));
    if (target > engine.performed()) engine.prune(target - engine.performed());

    std::uint64_t matches_on = 0;
    std::uint64_t matches_off = 0;
    for (const bool trigger : {true, false}) {
      matcher.set_pmin_trigger(trigger);
      matcher.reset_counters();
      std::vector<SubscriptionId> out;
      Stopwatch watch;
      watch.start();
      for (const auto& e : events) {
        out.clear();
        matcher.match(e, out);
      }
      watch.stop();
      (trigger ? matches_on : matches_off) = matcher.counters().matches;
      std::printf("%-10.1f %-9s %16llu %16llu %12.3f\n", fraction,
                  trigger ? "on" : "off",
                  static_cast<unsigned long long>(matcher.counters().tree_evaluations),
                  static_cast<unsigned long long>(matcher.counters().matches),
                  1e3 * watch.seconds() / static_cast<double>(n_events));
    }
    if (matches_on != matches_off) ++mismatches;  // must agree semantically
  }
  matcher.set_pmin_trigger(true);
  std::printf("\nsemantic agreement across modes: %s\n",
              mismatches == 0 ? "yes" : "NO (bug!)");
  return mismatches == 0 ? 0 : 1;
}
