// Baseline cost of classical routing-table compaction: pairwise
// covering checks and predicate merging over auction subscription trees.
// This is the O(N^2)-shaped work a broker performs when it compacts its
// routing table subscription-by-subscription — the approach the agg/
// subgroup summaries replace with an O(subgroups) advertisement. Read next
// to micro_routing's sub-linear advertised_bytes/candidate curves, these
// numbers are the "why": all-pairs covering over even a few thousand
// subscriptions already costs milliseconds per update wave, and it only
// removes subscriptions that are *exactly* subsumed.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "routing/covering.hpp"
#include "routing/merging.hpp"
#include "workload/subscription_gen.hpp"

namespace {

using namespace dbsp;

std::vector<std::unique_ptr<Node>> make_trees(std::size_t n) {
  WorkloadConfig cfg;
  cfg.seed = 11;
  AuctionDomain domain(cfg);
  AuctionSubscriptionGenerator gen(domain, 1);
  std::vector<std::unique_ptr<Node>> trees;
  trees.reserve(n);
  for (std::size_t i = 0; i < n; ++i) trees.push_back(gen.next_tree());
  return trees;
}

// All-pairs covering sweep: how many subscriptions a broker could drop
// from its routing table because another one subsumes them.
void BM_CoveringPairs(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto trees = make_trees(n);
  std::size_t covered = 0;
  for (auto _ : state) {
    covered = 0;
    for (std::size_t j = 0; j < trees.size(); ++j) {
      for (std::size_t i = 0; i < trees.size(); ++i) {
        if (i == j) continue;
        const auto result = covers(*trees[i], *trees[j]);
        if (result.has_value() && *result) {
          ++covered;
          break;  // one coverer is enough to elide j's advertisement
        }
      }
    }
    benchmark::DoNotOptimize(covered);
  }
  state.counters["covered"] = static_cast<double>(covered);
  state.counters["pairs"] = static_cast<double>(n) * static_cast<double>(n - 1);
}

// Fixpoint pairwise merging: collapse perfect-merge pairs until none
// remain — the strongest lossless compaction pairwise reasoning offers.
void BM_MergeAll(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto trees = make_trees(n);
  std::vector<const Node*> roots;
  roots.reserve(trees.size());
  for (const auto& tree : trees) roots.push_back(tree.get());
  std::size_t merged_size = 0;
  for (auto _ : state) {
    auto merged = merge_all(roots);
    merged_size = merged.size();
    benchmark::DoNotOptimize(merged);
  }
  state.counters["out"] = static_cast<double>(merged_size);
}

}  // namespace

BENCHMARK(BM_CoveringPairs)->Arg(256)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MergeAll)->Arg(256)->Arg(1024)->Arg(4096)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
