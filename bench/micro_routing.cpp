// Aggregated-routing scale bench: drives an aggregated ShardedEngine
// through a 3-point population sweep (N/100, N/10, N auction subscriptions,
// default N = 1,000,000) and reports, per scale, the routing-table bytes a
// broker would advertise (subgroup summaries vs per-subscription trees),
// the per-event candidate footprint of the summary probe, the deployed
// hybrid match latency (summary probe -> candidate evaluation, falling
// back to the exact shard index when the probe cannot prune), and a
// sampled delivery oracle (engine match vs direct tree evaluation). At the
// smallest scale it also measures the unaggregated ShardedEngine as the
// latency baseline. Prints a machine-readable JSON report to stdout
// (consumed by tools/bench_runner.py into BENCH_routing.json) and exits
// non-zero on any oracle mismatch, so CI can gate on the
// no-false-negative contract.
//
// Knobs: DBSP_ROUTING_SUBS (top scale, default 1000000),
// DBSP_ROUTING_EVENTS (probed events per scale, default 256),
// DBSP_ROUTING_SAMPLE (oracle subscriptions sampled per event, default 64),
// DBSP_ROUTING_TRAINING_EVENTS (selectivity sample, default 2000),
// DBSP_SHARDS (baseline engine shards, default 1), plus the DBSP_AGG_*
// aggregator knobs (this bench defaults DBSP_AGG_SUBGROUPS to 4096 and
// DBSP_AGG_VALUES to 32 when unset — the caps appropriate for a
// million-subscription table).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "agg/aggregator.hpp"
#include "common/env.hpp"
#include "common/timer.hpp"
#include "core/sharded_engine.hpp"
#include "routing/codec.hpp"
#include "selectivity/stats.hpp"
#include "workload/event_gen.hpp"
#include "workload/subscription_gen.hpp"

namespace {

using namespace dbsp;

struct ScaleReport {
  std::size_t subs = 0;
  std::size_t subgroups = 0;
  unsigned signature_shift = 0;
  std::size_t advertised_bytes = 0;
  std::size_t tree_bytes = 0;
  double avg_admitted_subgroups = 0.0;
  double avg_candidates = 0.0;
  double match_us_per_event = 0.0;
  double matches_per_event = 0.0;
  double fallback_share = 0.0;
  std::size_t oracle_checked = 0;
  std::size_t oracle_mismatches = 0;
};

}  // namespace

int main() {
  const auto max_subs =
      static_cast<std::size_t>(env_int("DBSP_ROUTING_SUBS", 1000000));
  const auto n_events =
      static_cast<std::size_t>(env_int("DBSP_ROUTING_EVENTS", 256));
  const auto sample =
      static_cast<std::size_t>(env_int("DBSP_ROUTING_SAMPLE", 64));
  const auto training =
      static_cast<std::size_t>(env_int("DBSP_ROUTING_TRAINING_EVENTS", 2000));

  std::vector<std::size_t> scales{max_subs / 100, max_subs / 10, max_subs};
  for (std::size_t& s : scales) s = std::max<std::size_t>(s, 1);
  scales.erase(std::unique(scales.begin(), scales.end()), scales.end());

  WorkloadConfig cfg;
  cfg.seed = 11;
  AuctionDomain domain(cfg);
  AuctionSubscriptionGenerator sub_gen(domain, 1);
  AuctionEventGenerator event_gen(domain, 2);
  const std::vector<Event> events = event_gen.generate(n_events);

  // Trained selectivity statistics drive the dimension choice, exactly as
  // PubSub::train would in production.
  EventStats stats(domain.schema());
  {
    AuctionEventGenerator training_gen(domain, 3);
    for (std::size_t i = 0; i < training; ++i) stats.observe(training_gen.next());
  }
  stats.finalize();

  agg::AggregatorOptions options = agg::AggregatorOptions::from_env();
  if (std::getenv("DBSP_AGG_SUBGROUPS") == nullptr) options.max_subgroups = 4096;
  if (std::getenv("DBSP_AGG_VALUES") == nullptr) options.limits.max_values = 32;

  agg::SubscriptionAggregator aggregator(domain.schema(), options);
  aggregator.train(stats);

  // The deployed path: an aggregated ShardedEngine — the probe's candidate
  // evaluation with a cost-based fallback to the exact shard index.
  ShardedEngineOptions engine_options;
  engine_options.shards =
      static_cast<std::size_t>(std::max<std::int64_t>(1, env_int("DBSP_SHARDS", 1)));
  ShardedEngine engine(domain.schema(), engine_options);
  engine.attach_aggregation(&aggregator);

  std::vector<std::unique_ptr<Subscription>> subs;
  subs.reserve(max_subs);
  std::size_t tree_bytes = 0;

  std::vector<ScaleReport> reports;
  double baseline_us_per_event = 0.0;
  std::vector<SubscriptionId> out;
  bool exact = true;

  for (const std::size_t scale : scales) {
    std::fprintf(stderr, "[micro_routing] growing to %zu subscriptions...\n",
                 scale);
    while (subs.size() < scale) {
      auto sub = std::make_unique<Subscription>(
          SubscriptionId(static_cast<SubscriptionId::value_type>(subs.size())),
          sub_gen.next_tree());
      tree_bytes += encoded_size(sub->root());
      engine.add(*sub);
      subs.push_back(std::move(sub));
    }

    ScaleReport r;
    r.subs = subs.size();
    r.subgroups = aggregator.subgroup_count();
    r.signature_shift = aggregator.signature_shift();
    r.advertised_bytes = aggregator.advertised_bytes();
    r.tree_bytes = tree_bytes;

    std::size_t admitted = 0;
    std::size_t candidates = 0;
    for (const Event& event : events) {
      const auto p = aggregator.probe(event);
      admitted += p.admitted;
      candidates += p.candidates;
    }
    r.avg_admitted_subgroups =
        static_cast<double>(admitted) / static_cast<double>(events.size());
    r.avg_candidates =
        static_cast<double>(candidates) / static_cast<double>(events.size());

    // Timed hybrid loop, repeated until the window is long enough to
    // dominate timer noise (small scales finish one pass in a few ms,
    // which made the baseline latency ratio flaky).
    std::uint64_t matches = 0;
    const std::uint64_t declines_before = aggregator.counters().probe_declines;
    std::size_t rounds = 0;
    Stopwatch watch;
    do {
      watch.start();
      for (const Event& event : events) {
        out.clear();
        engine.match(event, out);
        matches += out.size();
      }
      watch.stop();
      ++rounds;
    } while (watch.seconds() < 0.05 && rounds < 64);
    const auto timed_events = static_cast<double>(events.size() * rounds);
    r.match_us_per_event = watch.seconds() * 1e6 / timed_events;
    r.matches_per_event = static_cast<double>(matches) / timed_events;
    r.fallback_share =
        static_cast<double>(aggregator.counters().probe_declines - declines_before) /
        timed_events;

    // Sampled delivery oracle: aggregated membership must equal direct
    // tree evaluation for every sampled subscription (no false negatives,
    // no false positives — admitted candidates are exactly re-evaluated).
    const std::size_t stride = std::max<std::size_t>(1, subs.size() / sample);
    for (const Event& event : events) {
      out.clear();
      engine.match(event, out);
      for (std::size_t i = 0; i < subs.size(); i += stride) {
        ++r.oracle_checked;
        const bool expected = subs[i]->matches(event);
        const bool got =
            std::binary_search(out.begin(), out.end(), subs[i]->id());
        if (expected != got) ++r.oracle_mismatches;
      }
    }
    if (r.oracle_mismatches != 0) exact = false;

    if (reports.empty()) {
      // Unaggregated latency baseline at the smallest scale: the same
      // subscription stream through a plain counting ShardedEngine. The
      // trees are regenerated (same seed/stream) because a counting
      // registration stamps predicate ids into the leaves — one tree must
      // not live in two counting engines at once.
      AuctionSubscriptionGenerator base_gen(domain, 1);
      std::vector<std::unique_ptr<Subscription>> base_subs;
      base_subs.reserve(subs.size());
      for (std::size_t i = 0; i < subs.size(); ++i) {
        base_subs.push_back(std::make_unique<Subscription>(
            SubscriptionId(static_cast<SubscriptionId::value_type>(i)),
            base_gen.next_tree()));
      }
      ShardedEngine baseline(domain.schema(), engine_options);
      for (const auto& sub : base_subs) baseline.add(*sub);
      std::size_t base_rounds = 0;
      Stopwatch base;
      do {
        base.start();
        for (const Event& event : events) {
          out.clear();
          baseline.match(event, out);
        }
        base.stop();
        ++base_rounds;
      } while (base.seconds() < 0.05 && base_rounds < 64);
      baseline_us_per_event =
          base.seconds() * 1e6 / static_cast<double>(events.size() * base_rounds);
    }
    reports.push_back(r);
  }

  std::printf("{\n  \"schema_version\": 1,\n");
  std::printf(
      "  \"config\": {\"subs\": %zu, \"events\": %zu, \"sample\": %zu, "
      "\"dimensions\": %zu, \"max_subgroups\": %zu, \"max_intervals\": %zu, "
      "\"max_values\": %zu},\n",
      max_subs, n_events, sample, aggregator.dimensions().size(),
      options.max_subgroups, options.limits.max_intervals,
      options.limits.max_values);
  std::printf("  \"baseline\": {\"subs\": %zu, \"match_us_per_event\": %.3f},\n",
              reports.front().subs, baseline_us_per_event);
  std::printf("  \"exact\": %s,\n", exact ? "true" : "false");
  std::printf("  \"scales\": [\n");
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const ScaleReport& r = reports[i];
    std::printf(
        "    {\"subs\": %zu, \"subgroups\": %zu, \"signature_shift\": %u, "
        "\"advertised_bytes\": %zu, "
        "\"tree_bytes\": %zu, \"avg_admitted_subgroups\": %.2f, "
        "\"avg_candidates\": %.2f, \"match_us_per_event\": %.3f, "
        "\"matches_per_event\": %.2f, \"fallback_share\": %.3f, "
        "\"oracle_checked\": %zu, "
        "\"oracle_mismatches\": %zu}%s\n",
        r.subs, r.subgroups, r.signature_shift, r.advertised_bytes, r.tree_bytes,
        r.avg_admitted_subgroups, r.avg_candidates, r.match_us_per_event,
        r.matches_per_event, r.fallback_share, r.oracle_checked, r.oracle_mismatches,
        i + 1 == reports.size() ? "" : ",");
  }
  std::printf("  ]\n}\n");
  return exact ? 0 : 1;
}
