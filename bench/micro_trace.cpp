// Tracing-overhead microbenchmark: (a) the raw tracing primitives — one
// trace-context mint, one lock-free FlightRecorder ring write, and the
// tail sampler's fast-path rejection — (b) the cost of one /traces
// snapshot of a full ring, and (c) the contract that matters: the same
// 10k-subscription auction publish_batch workload with tracing on
// (default 1-in-8 head sampling) vs off. bench_runner.py summarizes (c)
// as `trace_overhead` in BENCH_micro.json and the CI bench smoke gates
// on it — the documented budget is <= 5%.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "dbsp/dbsp.hpp"
#include "obs/flight.hpp"
#include "workload/event_gen.hpp"
#include "workload/subscription_gen.hpp"

namespace {

using namespace dbsp;

struct Fixture {
  WorkloadConfig cfg;
  std::unique_ptr<AuctionDomain> domain;
  std::vector<Event> events;

  Fixture(std::size_t n_events) {
    cfg.seed = 7;
    domain = std::make_unique<AuctionDomain>(cfg);
    events = AuctionEventGenerator(*domain, 2).generate(n_events);
  }
};

constexpr std::size_t kSubs = 10000;
constexpr std::size_t kEvents = 256;

obs::FlightRecorderOptions bench_recorder_options() {
  obs::FlightRecorderOptions options;
  options.capacity = 256;
  options.sample_every = 8;
  options.slow_k = 16;
  options.window_ms = 10000;
  return options;
}

void BM_MakeTraceContext(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(obs::make_trace_context(true).trace_id);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MakeTraceContext)->Unit(benchmark::kNanosecond);

void BM_FlightRecorderRecord(benchmark::State& state) {
  obs::FlightRecorder recorder(bench_recorder_options());
  obs::Trace trace;
  trace.trace_id = 1;
  trace.start_unix_us = 1;
  trace.duration_us = 10;
  for (int i = 0; i < 6; ++i) {
    obs::TraceSpan span;
    span.stage = obs::TraceStage::kShardMatch;
    span.span_id = static_cast<std::uint64_t>(i + 1);
    trace.spans.push_back(span);
  }
  for (auto _ : state) {
    recorder.record(trace);
  }
  benchmark::DoNotOptimize(recorder.recorded_total());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlightRecorderRecord)->Unit(benchmark::kNanosecond);

// The per-untraced-publish cost of tail sampling: one relaxed threshold
// load and a rejected fast path (the common case once the window is full
// of genuinely slow traces).
void BM_AdmitSlowFastPathReject(benchmark::State& state) {
  obs::FlightRecorderOptions options = bench_recorder_options();
  options.slow_k = 1;
  obs::FlightRecorder recorder(options);
  benchmark::DoNotOptimize(recorder.admit_slow(1000000));  // raise threshold
  for (auto _ : state) {
    benchmark::DoNotOptimize(recorder.admit_slow(0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AdmitSlowFastPathReject)->Unit(benchmark::kNanosecond);

// One operator pull of GET /traces against a full default-size ring.
void BM_TracesSnapshot(benchmark::State& state) {
  obs::FlightRecorder recorder(bench_recorder_options());
  obs::Trace trace;
  trace.trace_id = 1;
  trace.start_unix_us = 1;
  for (int i = 0; i < 6; ++i) {
    obs::TraceSpan span;
    span.span_id = static_cast<std::uint64_t>(i + 1);
    trace.spans.push_back(span);
  }
  for (std::size_t i = 0; i < recorder.capacity(); ++i) {
    trace.trace_id = i + 1;
    trace.start_unix_us = i + 1;
    recorder.record(trace);
  }
  for (auto _ : state) {
    const std::vector<obs::Trace> traces = recorder.snapshot();
    benchmark::DoNotOptimize(traces.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TracesSnapshot)->Unit(benchmark::kMicrosecond);

// The overhead contract pair: identical workload to micro_metrics'
// publish-batch pair, with per-event tracing on (default 1-in-8 head
// sampling, default ring) vs off. bench_runner.py reports on/off as
// `trace_overhead`.
void publish_batch_bench(benchmark::State& state, bool tracing) {
  Fixture fx(kEvents);
  PubSubOptions options;
  options.engine.shards = static_cast<std::size_t>(state.range(0));
  options.tracing = tracing;
  options.trace = bench_recorder_options();
  PubSub pubsub(fx.domain->schema(), options);
  AuctionSubscriptionGenerator sub_gen(*fx.domain, 1);
  std::vector<SubscriptionHandle> handles;
  handles.reserve(kSubs);
  for (std::uint32_t i = 0; i < kSubs; ++i) {
    handles.push_back(pubsub.subscribe(sub_gen.next_tree()).value());
  }

  for (auto _ : state) {
    const std::uint64_t delivered = pubsub.publish_batch(fx.events);
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(fx.events.size()));
}

void BM_PublishBatchTracingOn(benchmark::State& state) {
  publish_batch_bench(state, /*tracing=*/true);
}
BENCHMARK(BM_PublishBatchTracingOn)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMicrosecond)->UseRealTime();

void BM_PublishBatchTracingOff(benchmark::State& state) {
  publish_batch_bench(state, /*tracing=*/false);
}
BENCHMARK(BM_PublishBatchTracingOff)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMicrosecond)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
