// Figure 1(e): actual network load (distributed) — proportional increase in
// routed event messages vs the unoptimized overlay. Paper shape: sel bends
// at ~75% of prunings (+37% there), eff at ~50% (+26%), mem at ~5%.

#include <iostream>

#include "fig_common.hpp"

int main() {
  using namespace dbsp;
  const auto cfg = bench::distributed_config_from_env();
  bench::print_scale_banner(cfg.subscriptions, cfg.events);
  const auto series = bench::distributed_series(
      cfg, "Network", [](const DistributedPoint& p) { return p.network_increase; });
  print_figure(std::cout, "Fig 1(e): Actual network load (distributed)",
               "proportional number of prunings",
               "proport. increase in network load", series);
  return 0;
}
