// Durable-store microbenchmarks: WAL append throughput (the per-subscribe
// durability tax), snapshot write cost at a given table size, and full
// crash-recovery replay (PubSub::open over snapshot + WAL). bench_runner.py
// summarizes these rows into BENCH_store.json; the recovery rows are the
// "how long is a restart" trajectory number.

#include <benchmark/benchmark.h>

#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "dbsp/dbsp.hpp"
#include "store/state_store.hpp"
#include "workload/subscription_gen.hpp"

namespace {

using namespace dbsp;

namespace fs = std::filesystem;

fs::path scratch_dir(const std::string& tag) {
#if defined(__unix__) || defined(__APPLE__)
  const std::string owner = std::to_string(::getpid());
#else
  const std::string owner = "0";
#endif
  const fs::path dir =
      fs::temp_directory_path() / ("dbsp_micro_store_" + owner + "_" + tag);
  fs::remove_all(dir);
  return dir;
}

struct Fixture {
  static WorkloadConfig make_cfg() {
    WorkloadConfig cfg;
    cfg.seed = 7;
    return cfg;
  }

  WorkloadConfig cfg = make_cfg();
  std::unique_ptr<AuctionDomain> domain = std::make_unique<AuctionDomain>(cfg);
  AuctionSubscriptionGenerator sub_gen{*domain, 1};
};

/// One iteration = one durably logged subscribe (WAL append included) of a
/// pre-generated filter tree. Unsubscribes between batches keep the table
/// from growing without bound, outside the timed region.
void BM_DurableSubscribe(benchmark::State& state) {
  Fixture fx;
  const fs::path dir = scratch_dir("append");
  StoreOptions store;
  store.directory = dir.string();
  store.schema = fx.domain->schema();
  store.snapshot_every = 1 << 30;  // isolate the append path
  auto opened = PubSub::open(std::move(store));
  if (!opened.ok()) {
    state.SkipWithError(opened.status().to_string().c_str());
    return;
  }
  PubSub pubsub = std::move(opened).value();

  constexpr std::size_t kBatch = 512;
  std::vector<std::unique_ptr<Node>> trees;
  std::vector<SubscriptionHandle> handles;
  handles.reserve(kBatch);
  for (auto _ : state) {
    state.PauseTiming();
    trees.clear();
    for (std::size_t i = 0; i < kBatch; ++i) trees.push_back(fx.sub_gen.next_tree());
    handles.clear();  // unsubscribes (and logs) the previous batch
    state.ResumeTiming();
    for (auto& tree : trees) {
      handles.push_back(pubsub.subscribe(std::move(tree)).value());
    }
    benchmark::DoNotOptimize(handles.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBatch));
  handles.clear();
  fs::remove_all(dir);
}
BENCHMARK(BM_DurableSubscribe)->Unit(benchmark::kMicrosecond)->UseRealTime();

/// One iteration = one compacted snapshot of an N-subscription table.
void BM_SnapshotWrite(benchmark::State& state) {
  Fixture fx;
  const auto n = static_cast<std::size_t>(state.range(0));
  const fs::path dir = scratch_dir("snapshot_" + std::to_string(n));
  StoreOptions store;
  store.directory = dir.string();
  store.schema = fx.domain->schema();
  store.snapshot_every = 1 << 30;
  auto opened = PubSub::open(std::move(store));
  if (!opened.ok()) {
    state.SkipWithError(opened.status().to_string().c_str());
    return;
  }
  PubSub pubsub = std::move(opened).value();
  std::vector<SubscriptionHandle> handles;
  handles.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    handles.push_back(pubsub.subscribe(fx.sub_gen.next_tree()).value());
  }

  for (auto _ : state) {
    const Status snapped = pubsub.checkpoint();
    if (!snapped.ok()) {
      state.SkipWithError(snapped.to_string().c_str());
      break;
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  handles.clear();
  fs::remove_all(dir);
}
BENCHMARK(BM_SnapshotWrite)->Arg(1000)->Arg(5000)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

/// One iteration = one full crash recovery (PubSub::open) of a store whose
/// N subscriptions live entirely in the WAL (worst case: no compaction).
void BM_RecoverFromWal(benchmark::State& state) {
  Fixture fx;
  const auto n = static_cast<std::size_t>(state.range(0));
  const fs::path dir = scratch_dir("recover_" + std::to_string(n));
  {
    StoreOptions store;
    store.directory = dir.string();
    store.schema = fx.domain->schema();
    store.snapshot_every = 1 << 30;  // everything stays in the WAL
    auto opened = PubSub::open(std::move(store));
    if (!opened.ok()) {
      state.SkipWithError(opened.status().to_string().c_str());
      return;
    }
    std::optional<PubSub> pubsub(std::move(opened).value());
    std::vector<SubscriptionHandle> handles;
    handles.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      handles.push_back(pubsub->subscribe(fx.sub_gen.next_tree()).value());
    }
    pubsub.reset();  // crash: handles turn inert, the WAL holds everything
    handles.clear();
  }

  for (auto _ : state) {
    StoreOptions store;
    store.directory = dir.string();
    auto reopened = PubSub::open(std::move(store));
    if (!reopened.ok()) {
      state.SkipWithError(reopened.status().to_string().c_str());
      break;
    }
    benchmark::DoNotOptimize(reopened.value().subscription_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  fs::remove_all(dir);
}
BENCHMARK(BM_RecoverFromWal)->Arg(1000)->Arg(5000)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
