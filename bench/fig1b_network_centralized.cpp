// Figure 1(b): expected network load (centralized) — proportional number of
// matching events vs pruning fraction. Paper shape: sel stays flat longest
// (bend ~75%), eff bends at ~50%, mem explodes almost immediately (~5%).

#include <iostream>

#include "fig_common.hpp"

int main() {
  using namespace dbsp;
  const auto cfg = bench::centralized_config_from_env();
  bench::print_scale_banner(cfg.subscriptions, cfg.events);
  const auto series = bench::centralized_series(
      cfg, "Events", [](const CentralizedPoint& p) { return p.matching_fraction; });
  print_figure(std::cout, "Fig 1(b): Expected network load (centralized)",
               "proportional number of prunings", "proport. no. of matching events",
               series);
  return 0;
}
