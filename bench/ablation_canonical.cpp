// Ablation A6: canonical (DNF counting, refs [2]/[10]) vs non-canonical
// (Boolean-tree counting) filtering on the auction workload. The paper's
// footnote 1 notes that DNF does not rescue covering/merging's generality
// problem; this bench quantifies the canonical blowup (conjunction counters
// vs pred/sub associations) and the matching-throughput difference.

#include <cstdio>
#include <memory>
#include <vector>

#include "common/env.hpp"
#include "common/timer.hpp"
#include "filter/counting_matcher.hpp"
#include "filter/dnf_matcher.hpp"
#include "workload/event_gen.hpp"
#include "workload/subscription_gen.hpp"

int main() {
  using namespace dbsp;
  const auto n_subs = static_cast<std::size_t>(env_int("DBSP_SUBS", 8000));
  const auto n_events = static_cast<std::size_t>(env_int("DBSP_EVENTS", 2000));

  const WorkloadConfig wl;
  const AuctionDomain domain(wl);
  AuctionSubscriptionGenerator sub_gen(domain, 1);
  std::vector<std::unique_ptr<Subscription>> subs;
  for (std::uint32_t i = 0; i < n_subs; ++i) {
    subs.push_back(std::make_unique<Subscription>(SubscriptionId(i), sub_gen.next_tree()));
  }
  AuctionEventGenerator event_gen(domain, 2);
  const auto events = event_gen.generate(n_events);

  std::printf("=== Ablation A6: canonical (DNF) vs non-canonical matcher ===\n");
  std::printf("%zu subscriptions, %zu events\n\n", n_subs, n_events);

  // Non-canonical: Boolean-tree counting.
  CountingMatcher tree_matcher(domain.schema());
  Stopwatch tree_build;
  tree_build.start();
  for (auto& s : subs) tree_matcher.add(*s);
  tree_build.stop();

  // Canonical: DNF counting.
  DnfMatcher dnf_matcher(domain.schema());
  Stopwatch dnf_build;
  dnf_build.start();
  std::size_t converted = 0;
  for (auto& s : subs) {
    if (dnf_matcher.add(*s)) ++converted;
  }
  dnf_build.stop();

  auto run = [&](auto& matcher) {
    std::vector<SubscriptionId> out;
    std::uint64_t matches = 0;
    Stopwatch w;
    w.start();
    for (const auto& e : events) {
      out.clear();
      matcher.match(e, out);
      matches += out.size();
    }
    w.stop();
    return std::pair<double, std::uint64_t>(w.seconds(), matches);
  };
  const auto [tree_secs, tree_matches] = run(tree_matcher);
  const auto [dnf_secs, dnf_matches] = run(dnf_matcher);

  std::printf("%-16s %14s %14s %16s %14s %12s\n", "algorithm", "build s",
              "state units", "(unit)", "matches", "ms/event");
  std::printf("%-16s %14.3f %14zu %16s %14llu %12.3f\n", "tree-counting",
              tree_build.seconds(), tree_matcher.association_count(),
              "associations", static_cast<unsigned long long>(tree_matches),
              1e3 * tree_secs / static_cast<double>(n_events));
  std::printf("%-16s %14.3f %14zu %16s %14llu %12.3f\n", "dnf-counting",
              dnf_build.seconds(), dnf_matcher.association_count(),
              "conj-preds", static_cast<unsigned long long>(dnf_matches),
              1e3 * dnf_secs / static_cast<double>(n_events));
  std::printf("\nDNF-convertible subscriptions: %zu / %zu; conjunction counters: %zu\n",
              converted, n_subs, dnf_matcher.conjunction_count());
  std::printf("semantic agreement: %s\n",
              tree_matches == dnf_matches ? "yes" : "NO (bug!)");
  return tree_matches == dnf_matches ? 0 : 1;
}
