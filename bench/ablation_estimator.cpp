// Ablation A5: quality of the Δ≈sel estimator (§3.1). For a sample of
// actually performed network-dimension prunings, compares the estimated
// selectivity degradation against the measured degradation (match-fraction
// difference on a held-out event set). Reports the paper's soundness claim:
// the actual degradation lies in [0, selmax(sy) − selmin(sx)].

#include <cstdio>
#include <memory>
#include <vector>

#include "common/env.hpp"
#include "core/engine.hpp"
#include "selectivity/estimator.hpp"
#include "selectivity/exact.hpp"
#include "selectivity/stats.hpp"
#include "workload/event_gen.hpp"
#include "workload/subscription_gen.hpp"

int main() {
  using namespace dbsp;
  const auto n_subs = static_cast<std::size_t>(env_int("DBSP_SUBS", 2000));
  const auto n_events = static_cast<std::size_t>(env_int("DBSP_EVENTS", 3000));

  const WorkloadConfig wl;
  const AuctionDomain domain(wl);
  EventStats stats(domain.schema());
  AuctionEventGenerator training(domain, 3);
  for (int i = 0; i < 10000; ++i) stats.observe(training.next());
  stats.finalize();
  const SelectivityEstimator estimator(stats);
  AuctionEventGenerator holdout_gen(domain, 2);
  const auto holdout = holdout_gen.generate(n_events);

  AuctionSubscriptionGenerator sub_gen(domain, 1);
  std::vector<std::unique_ptr<Subscription>> subs;
  std::vector<std::unique_ptr<Node>> originals;
  for (std::uint32_t i = 0; i < n_subs; ++i) {
    auto tree = sub_gen.next_tree();
    originals.push_back(tree->clone());
    subs.push_back(std::make_unique<Subscription>(SubscriptionId(i), std::move(tree)));
  }

  PruneEngineConfig cfg;
  cfg.dimension = PruneDimension::NetworkLoad;
  PruningEngine engine(estimator, cfg);
  for (auto& s : subs) engine.register_subscription(*s);
  const std::size_t steps = engine.total_possible() / 2;
  engine.prune(steps);

  std::printf("=== Ablation A5: Δ≈sel estimator vs measured degradation ===\n");
  std::printf("%zu subscriptions, %zu held-out events, %zu prunings (50%%)\n\n",
              n_subs, n_events, engine.performed());

  // Measure per-subscription cumulative degradation: match fraction of the
  // pruned tree minus match fraction of the original tree.
  double mae = 0.0;
  double bias = 0.0;
  std::size_t pruned_subs = 0;
  std::size_t sound = 0;
  for (std::uint32_t i = 0; i < n_subs; ++i) {
    if (subs[i]->generation() == 0) continue;  // never pruned
    ++pruned_subs;
    const double before = measured_selectivity(*originals[i], holdout);
    const double after = measured_selectivity(subs[i]->root(), holdout);
    const double actual = after - before;

    const auto est_before = estimator.estimate(*originals[i]);
    const auto est_after = estimator.estimate(subs[i]->root());
    const double estimated = selectivity_degradation(est_before, est_after);

    mae += std::abs(estimated - actual);
    bias += estimated - actual;
    // Paper: actual degradation lies in [0, selmax(sy) - selmin(sx)].
    if (actual >= -1e-9 && actual <= est_after.max - est_before.min + 1e-9) ++sound;
  }
  if (pruned_subs == 0) {
    std::printf("no subscriptions pruned — nothing to evaluate\n");
    return 1;
  }
  std::printf("pruned subscriptions:          %zu\n", pruned_subs);
  std::printf("mean absolute error (Δ≈sel):   %.5f\n",
              mae / static_cast<double>(pruned_subs));
  std::printf("mean bias (est - actual):      %+.5f\n",
              bias / static_cast<double>(pruned_subs));
  std::printf("within [0, selmax-selmin]:     %zu / %zu (%.1f%%)\n", sound, pruned_subs,
              100.0 * static_cast<double>(sound) / static_cast<double>(pruned_subs));
  return 0;
}
