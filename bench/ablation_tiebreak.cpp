// Ablation A4: does the §3.4 tie-break order matter? For every primary
// dimension, runs both orders of the two remaining dimensions and reports
// mid-sweep metrics. Ties on the primary rating are common (structurally
// equal candidates score identically), so the secondary choice is exercised
// constantly; the paper's orders put the dimension most aligned with the
// primary goal second.

#include <cstdio>

#include "common/env.hpp"
#include "experiment/centralized.hpp"

int main() {
  using namespace dbsp;
  CentralizedConfig cfg;
  cfg.subscriptions = static_cast<std::size_t>(env_int("DBSP_SUBS", 6000));
  cfg.events = static_cast<std::size_t>(env_int("DBSP_EVENTS", 1500));
  cfg.fractions = {0.0, 0.4};

  std::printf("=== Ablation A4: tie-break dimension orders at 40%% prunings ===\n");
  std::printf("%zu subscriptions, %zu events\n\n", cfg.subscriptions, cfg.events);
  std::printf("%-12s %-20s %12s %14s %18s %14s\n", "primary", "order", "prunings",
              "match frac.", "assoc. reduction", "ms/event");

  for (const auto primary :
       {PruneDimension::NetworkLoad, PruneDimension::MemoryUsage,
        PruneDimension::Throughput}) {
    const auto def = default_order(primary);
    const std::array<PruneDimension, 3> swapped = {def[0], def[2], def[1]};
    for (const auto& order : {def, swapped}) {
      cfg.tie_break_order = order;
      const auto result = run_centralized(cfg, primary);
      const auto& p = result.points.back();
      char label[64];
      std::snprintf(label, sizeof label, "%s,%s,%s", to_string(order[0]),
                    to_string(order[1]), to_string(order[2]));
      std::printf("%-12s %-20s %12zu %14.6f %18.4f %14.3f\n", to_string(primary),
                  label, p.prunings_performed, p.matching_fraction,
                  p.association_reduction, 1e3 * p.filter_time_per_event);
    }
  }
  std::printf("\n(the first row of each pair is the paper's §3.4 order)\n");
  return 0;
}
