// Throughput-vs-shards sweep of the sharded matching engine: the same
// 10k-subscription auction workload matched through match_batch() at 1, 2,
// 4, and 8 shards. items_per_second is events/sec, so the JSON rows in
// BENCH_micro.json directly expose the parallel speedup (wall-clock; the
// sweep only scales on multi-core hosts — see the host.num_cpus field).

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/sharded_engine.hpp"
#include "workload/event_gen.hpp"
#include "workload/subscription_gen.hpp"

namespace {

using namespace dbsp;

struct Fixture {
  WorkloadConfig cfg;
  std::unique_ptr<AuctionDomain> domain;
  std::vector<std::unique_ptr<Subscription>> subs;
  std::vector<Event> events;

  Fixture(std::size_t n_subs, std::size_t n_events) {
    cfg.seed = 7;
    domain = std::make_unique<AuctionDomain>(cfg);
    AuctionSubscriptionGenerator sub_gen(*domain, 1);
    for (std::uint32_t i = 0; i < n_subs; ++i) {
      subs.push_back(
          std::make_unique<Subscription>(SubscriptionId(i), sub_gen.next_tree()));
    }
    AuctionEventGenerator event_gen(*domain, 2);
    events = event_gen.generate(n_events);
  }
};

// One iteration = one batched dispatch of 256 events across the shards.
void BM_ShardedMatchBatch(benchmark::State& state) {
  Fixture fx(/*n_subs=*/10000, /*n_events=*/256);
  ShardedEngineOptions options;
  options.shards = static_cast<std::size_t>(state.range(0));
  ShardedEngine engine(fx.domain->schema(), options);
  for (auto& s : fx.subs) engine.add(*s);

  std::vector<std::vector<SubscriptionId>> results;
  for (auto _ : state) {
    engine.match_batch(fx.events, results);
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(fx.events.size()));
  state.counters["shards"] = static_cast<double>(engine.shard_count());
}
// UseRealTime: throughput must be wall-clock — the default CPU-time basis
// only counts the calling thread and would overstate multi-shard numbers.
BENCHMARK(BM_ShardedMatchBatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMicrosecond)->UseRealTime();

// The unbatched entry point (one event per call, all shards on the calling
// thread) — quantifies the per-event overhead sharding adds without the
// batched fan-out, i.e. what the broker's route_event pays.
void BM_ShardedMatchSingle(benchmark::State& state) {
  Fixture fx(/*n_subs=*/10000, /*n_events=*/256);
  ShardedEngineOptions options;
  options.shards = static_cast<std::size_t>(state.range(0));
  ShardedEngine engine(fx.domain->schema(), options);
  for (auto& s : fx.subs) engine.add(*s);

  std::vector<SubscriptionId> out;
  std::size_t i = 0;
  for (auto _ : state) {
    out.clear();
    engine.match(fx.events[i++ % fx.events.size()], out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ShardedMatchSingle)->Arg(1)->Arg(4)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
