// Ablation A3: the bottom-up restriction of §3.2. Without it the memory
// heuristic greedily deletes whole maximal subtrees ("we always experience
// the strongest reduction ... if we prune the largest subtree"), which
// wrecks selectivity almost immediately; with it prunings stay incremental.
//
// Part 1 runs the auction workload (whose trees are shallow — the two
// modes coincide there, itself a result worth knowing). Part 2 uses deep
// random Boolean trees where the restriction visibly changes behavior.

#include <cstdio>
#include <memory>
#include <random>
#include <vector>

#include "common/env.hpp"
#include "core/engine.hpp"
#include "experiment/centralized.hpp"
#include "selectivity/estimator.hpp"

namespace {

using namespace dbsp;

/// Deep random Boolean tree over numeric attributes (arity 2, depth ~5).
std::unique_ptr<Node> deep_tree(const Schema& schema, std::mt19937_64& rng,
                                std::size_t depth) {
  std::uniform_int_distribution<std::uint32_t> attr(
      0, static_cast<std::uint32_t>(schema.attribute_count() - 1));
  std::uniform_int_distribution<std::int64_t> val(0, 50);
  if (depth == 0) {
    const Op ops[] = {Op::Eq, Op::Lt, Op::Le, Op::Gt, Op::Ge};
    return Node::leaf(
        Predicate(AttributeId(attr(rng)), ops[rng() % 5], Value(val(rng))));
  }
  std::vector<std::unique_ptr<Node>> children;
  children.push_back(deep_tree(schema, rng, depth - 1));
  children.push_back(deep_tree(schema, rng, depth - 1));
  return rng() % 2 == 0 ? Node::and_(std::move(children))
                        : Node::or_(std::move(children));
}

void deep_tree_comparison() {
  Schema schema;
  for (int i = 0; i < 8; ++i) {
    schema.add_attribute("a" + std::to_string(i), ValueType::Int);
  }
  const SelectivityEstimator estimator(
      LeafSelectivityFn([](const Predicate& p) {
        return 0.05 + 0.9 * static_cast<double>(p.hash() % 997) / 997.0;
      }));

  std::printf("part 2: 1000 deep random trees (depth 5), memory dimension,\n"
              "        500 prunings under each mode\n\n");
  std::printf("%-12s %16s %18s %18s\n", "restriction", "prunings",
              "bytes removed", "total possible");
  for (const bool bottom_up : {true, false}) {
    std::mt19937_64 rng(99);
    std::vector<std::unique_ptr<Subscription>> subs;
    std::size_t before = 0;
    for (std::uint32_t i = 0; i < 1000; ++i) {
      auto tree = simplify(deep_tree(schema, rng, 5));
      if (tree->is_constant()) continue;
      subs.push_back(std::make_unique<Subscription>(SubscriptionId(i), std::move(tree)));
      before += subs.back()->root().size_bytes();
    }
    PruneEngineConfig cfg;
    cfg.dimension = PruneDimension::MemoryUsage;
    cfg.bottom_up = bottom_up;
    PruningEngine engine(estimator, cfg);
    for (auto& s : subs) engine.register_subscription(*s);
    const std::size_t total = engine.total_possible();
    engine.prune(500);
    std::size_t after = 0;
    for (const auto& s : subs) after += s->root().size_bytes();
    std::printf("%-12s %16zu %18zu %18zu\n", bottom_up ? "bottom-up" : "greedy",
                engine.performed(), before - after, total);
  }
  std::printf("\ngreedy removes maximal subtrees first (more bytes per pruning)\n"
              "but each cut is a far larger semantic jump; and without the\n"
              "restriction the prunings-to-exhaustion count is order-dependent,\n"
              "so the paper's proportional x-axis needs bottom-up.\n");
}

}  // namespace

int main() {
  using namespace dbsp;
  CentralizedConfig cfg;
  cfg.subscriptions = static_cast<std::size_t>(env_int("DBSP_SUBS", 6000));
  cfg.events = static_cast<std::size_t>(env_int("DBSP_EVENTS", 1500));
  cfg.fractions = {0.0, 0.1, 0.25, 0.5};

  std::printf("=== Ablation A3: bottom-up restriction (memory dimension) ===\n");
  std::printf("part 1: auction workload, %zu subscriptions, %zu events\n\n",
              cfg.subscriptions, cfg.events);
  std::printf("%-12s %-10s %16s %18s %14s\n", "restriction", "fraction",
              "prunings", "assoc. reduction", "match frac.");

  for (const bool bottom_up : {true, false}) {
    cfg.bottom_up = bottom_up;
    const auto result = run_centralized(cfg, PruneDimension::MemoryUsage);
    for (const auto& p : result.points) {
      std::printf("%-12s %-10.2f %16zu %18.4f %14.6f\n",
                  bottom_up ? "bottom-up" : "greedy", p.fraction,
                  p.prunings_performed, p.association_reduction, p.matching_fraction);
    }
    std::printf("(total possible prunings under this mode: %zu)\n\n",
                result.total_possible_prunings);
  }
  std::printf("auction trees are shallow (And-of-Or-groups), so both modes\n"
              "coincide there; deep trees separate them:\n\n");
  deep_tree_comparison();
  return 0;
}
