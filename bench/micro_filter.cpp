// Micro-benchmarks of the filtering engine: counting matcher vs the naive
// baseline across subscription counts, plus index probe cost.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "filter/counting_matcher.hpp"
#include "filter/naive_matcher.hpp"
#include "workload/event_gen.hpp"
#include "workload/subscription_gen.hpp"

namespace {

using namespace dbsp;

struct Fixture {
  WorkloadConfig cfg;
  std::unique_ptr<AuctionDomain> domain;
  std::vector<std::unique_ptr<Subscription>> subs;
  std::vector<Event> events;

  explicit Fixture(std::size_t n_subs) {
    cfg.seed = 7;
    domain = std::make_unique<AuctionDomain>(cfg);
    AuctionSubscriptionGenerator sub_gen(*domain, 1);
    for (std::uint32_t i = 0; i < n_subs; ++i) {
      subs.push_back(
          std::make_unique<Subscription>(SubscriptionId(i), sub_gen.next_tree()));
    }
    AuctionEventGenerator event_gen(*domain, 2);
    events = event_gen.generate(256);
  }
};

void BM_CountingMatcher(benchmark::State& state) {
  Fixture fx(static_cast<std::size_t>(state.range(0)));
  CountingMatcher matcher(fx.domain->schema());
  for (auto& s : fx.subs) matcher.add(*s);
  std::vector<SubscriptionId> out;
  std::size_t i = 0;
  for (auto _ : state) {
    out.clear();
    matcher.match(fx.events[i++ % fx.events.size()], out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CountingMatcher)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_NaiveMatcher(benchmark::State& state) {
  Fixture fx(static_cast<std::size_t>(state.range(0)));
  NaiveMatcher matcher;
  for (auto& s : fx.subs) matcher.add(*s);
  std::vector<SubscriptionId> out;
  std::size_t i = 0;
  for (auto _ : state) {
    out.clear();
    matcher.match(fx.events[i++ % fx.events.size()], out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_NaiveMatcher)->Arg(1000)->Arg(10000);

void BM_MatcherRegistration(benchmark::State& state) {
  Fixture fx(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    CountingMatcher matcher(fx.domain->schema());
    for (auto& s : fx.subs) matcher.add(*s);
    benchmark::DoNotOptimize(matcher.association_count());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_MatcherRegistration)->Arg(1000)->Arg(10000);

void BM_MatcherWithoutPminTrigger(benchmark::State& state) {
  Fixture fx(static_cast<std::size_t>(state.range(0)));
  CountingMatcher matcher(fx.domain->schema());
  for (auto& s : fx.subs) matcher.add(*s);
  matcher.set_pmin_trigger(false);
  std::vector<SubscriptionId> out;
  std::size_t i = 0;
  for (auto _ : state) {
    out.clear();
    matcher.match(fx.events[i++ % fx.events.size()], out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_MatcherWithoutPminTrigger)->Arg(1000)->Arg(10000);

}  // namespace

BENCHMARK_MAIN();
