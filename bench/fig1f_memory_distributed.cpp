// Figure 1(f): memory usage (distributed) — proportional reduction in
// predicate/subscription associations of non-local (remote) routing entries
// only. Paper shape: as in 1(c); the sel heuristic lands at -67% at its
// 75%-pruning operating point.

#include <iostream>

#include "fig_common.hpp"

int main() {
  using namespace dbsp;
  const auto cfg = bench::distributed_config_from_env();
  bench::print_scale_banner(cfg.subscriptions, cfg.events);
  const auto series = bench::distributed_series(
      cfg, "Memory",
      [](const DistributedPoint& p) { return p.association_reduction; });
  print_figure(std::cout, "Fig 1(f): Memory usage (distributed)",
               "proportional number of prunings",
               "prop. reduction in pred/sub assoc.", series);
  return 0;
}
