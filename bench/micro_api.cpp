// Facade-overhead microbenchmark: the same 10k-subscription auction
// workload matched through (a) ShardedEngine::match_batch directly and
// (b) PubSub::publish_batch — the public API path. bench_runner.py
// summarizes the ratio as `api_overhead` in BENCH_micro.json; the facade
// must stay within a few percent of the direct call (it adds one branch
// and per-row notification counting when no callbacks are registered).
// A third variant with a callback on every subscription prices dispatch.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/sharded_engine.hpp"
#include "dbsp/dbsp.hpp"
#include "workload/event_gen.hpp"
#include "workload/subscription_gen.hpp"

namespace {

using namespace dbsp;

struct Fixture {
  WorkloadConfig cfg;
  std::unique_ptr<AuctionDomain> domain;
  std::vector<Event> events;

  Fixture(std::size_t n_events) {
    cfg.seed = 7;
    domain = std::make_unique<AuctionDomain>(cfg);
    events = AuctionEventGenerator(*domain, 2).generate(n_events);
  }
};

constexpr std::size_t kSubs = 10000;
constexpr std::size_t kEvents = 256;

// One iteration = one batched dispatch of 256 events, straight on the
// engine (the internals the facade wraps).
void BM_DirectMatchBatch(benchmark::State& state) {
  Fixture fx(kEvents);
  ShardedEngineOptions options;
  options.shards = static_cast<std::size_t>(state.range(0));
  ShardedEngine engine(fx.domain->schema(), options);
  AuctionSubscriptionGenerator sub_gen(*fx.domain, 1);
  std::vector<std::unique_ptr<Subscription>> subs;
  for (std::uint32_t i = 0; i < kSubs; ++i) {
    subs.push_back(std::make_unique<Subscription>(SubscriptionId(i), sub_gen.next_tree()));
    engine.add(*subs.back());
  }

  std::vector<std::vector<SubscriptionId>> results;
  for (auto _ : state) {
    engine.match_batch(fx.events, results);
    benchmark::DoNotOptimize(results.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(fx.events.size()));
}
BENCHMARK(BM_DirectMatchBatch)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMicrosecond)->UseRealTime();

// The same workload through the facade with no callbacks registered —
// what metric-driven consumers (the experiments) pay.
void BM_PubSubPublishBatch(benchmark::State& state) {
  Fixture fx(kEvents);
  PubSubOptions options;
  options.engine.shards = static_cast<std::size_t>(state.range(0));
  PubSub pubsub(fx.domain->schema(), options);
  AuctionSubscriptionGenerator sub_gen(*fx.domain, 1);
  std::vector<SubscriptionHandle> handles;
  handles.reserve(kSubs);
  for (std::uint32_t i = 0; i < kSubs; ++i) {
    handles.push_back(pubsub.subscribe(sub_gen.next_tree()).value());
  }

  for (auto _ : state) {
    const std::uint64_t delivered = pubsub.publish_batch(fx.events);
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(fx.events.size()));
}
BENCHMARK(BM_PubSubPublishBatch)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMicrosecond)->UseRealTime();

// Dispatch priced in: a trivial callback on every subscription adds one
// hash lookup + std::function call per notification.
void BM_PubSubPublishBatchCallbacks(benchmark::State& state) {
  Fixture fx(kEvents);
  PubSubOptions options;
  options.engine.shards = static_cast<std::size_t>(state.range(0));
  PubSub pubsub(fx.domain->schema(), options);
  AuctionSubscriptionGenerator sub_gen(*fx.domain, 1);
  std::uint64_t sink = 0;
  const auto count = [&sink](const Notification& n) { sink += n.seq; };
  std::vector<SubscriptionHandle> handles;
  handles.reserve(kSubs);
  for (std::uint32_t i = 0; i < kSubs; ++i) {
    handles.push_back(pubsub.subscribe(sub_gen.next_tree(), count).value());
  }

  for (auto _ : state) {
    const std::uint64_t delivered = pubsub.publish_batch(fx.events);
    benchmark::DoNotOptimize(delivered);
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(fx.events.size()));
}
BENCHMARK(BM_PubSubPublishBatchCallbacks)->Arg(1)
    ->Unit(benchmark::kMicrosecond)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
