#pragma once

// Shared scaffolding of the Figure-1 bench harnesses: scale knobs from the
// environment and one-call "run all three heuristics" drivers.
//
//   DBSP_FULL=1     paper scale (200k subscriptions, 100k events, 5 brokers)
//   DBSP_SUBS=n     override subscription count
//   DBSP_EVENTS=n   override published event count
//   DBSP_STEP_PCT=n pruning-fraction grid step in percent (default 10)
//   DBSP_SHARDS=n   matching-engine shards (default 1 for the centralized
//                   sweep so the paper's global pruning queue is reproduced;
//                   brokers in the distributed sweep always resolve the knob
//                   themselves, defaulting to hardware concurrency)

#include <array>
#include <cstdio>
#include <string>
#include <vector>

#include "common/env.hpp"
#include "experiment/centralized.hpp"
#include "experiment/distributed.hpp"
#include "experiment/series.hpp"

namespace dbsp::bench {

inline CentralizedConfig centralized_config_from_env() {
  CentralizedConfig cfg;
  const bool full = env_bool("DBSP_FULL", false);
  cfg.subscriptions = static_cast<std::size_t>(
      env_int("DBSP_SUBS", full ? 200000 : 20000));
  cfg.events = static_cast<std::size_t>(env_int("DBSP_EVENTS", full ? 100000 : 4000));
  cfg.training_events =
      static_cast<std::size_t>(env_int("DBSP_TRAINING_EVENTS", 20000));
  cfg.fractions = fraction_grid(env_int("DBSP_STEP_PCT", 10) / 100.0);
  const std::int64_t shards = env_int("DBSP_SHARDS", 1);
  cfg.shards = shards > 0 ? static_cast<std::size_t>(shards) : 1;
  return cfg;
}

inline DistributedConfig distributed_config_from_env() {
  DistributedConfig cfg;
  const bool full = env_bool("DBSP_FULL", false);
  cfg.brokers = static_cast<std::size_t>(env_int("DBSP_BROKERS", 5));
  cfg.subscriptions =
      static_cast<std::size_t>(env_int("DBSP_SUBS", full ? 200000 : 6000));
  cfg.events = static_cast<std::size_t>(env_int("DBSP_EVENTS", full ? 100000 : 1500));
  cfg.training_events =
      static_cast<std::size_t>(env_int("DBSP_TRAINING_EVENTS", 20000));
  cfg.fractions = fraction_grid(env_int("DBSP_STEP_PCT", 10) / 100.0);
  return cfg;
}

inline constexpr std::array<PruneDimension, 3> kDimensions = {
    PruneDimension::NetworkLoad, PruneDimension::Throughput,
    PruneDimension::MemoryUsage};

/// Paper curve labels: index "sel" / "eff" / "mem" per §4.1.
inline const char* curve_suffix(PruneDimension d) {
  switch (d) {
    case PruneDimension::NetworkLoad: return "sel";
    case PruneDimension::Throughput: return "eff";
    case PruneDimension::MemoryUsage: return "mem";
  }
  return "?";
}

template <class Metric>
std::vector<Series> centralized_series(const CentralizedConfig& cfg,
                                       const std::string& prefix, Metric metric) {
  std::vector<Series> out;
  for (const PruneDimension dim : kDimensions) {
    std::fprintf(stderr, "[fig] running centralized sweep, heuristic=%s...\n",
                 to_string(dim));
    const auto result = run_centralized(cfg, dim);
    Series s;
    s.name = prefix + "_" + curve_suffix(dim);
    for (const auto& p : result.points) s.points.emplace_back(p.fraction, metric(p));
    out.push_back(std::move(s));
  }
  return out;
}

template <class Metric>
std::vector<Series> distributed_series(const DistributedConfig& cfg,
                                       const std::string& prefix, Metric metric) {
  std::vector<Series> out;
  for (const PruneDimension dim : kDimensions) {
    std::fprintf(stderr, "[fig] running distributed sweep, heuristic=%s...\n",
                 to_string(dim));
    const auto result = run_distributed(cfg, dim);
    Series s;
    s.name = prefix + "_" + curve_suffix(dim);
    for (const auto& p : result.points) s.points.emplace_back(p.fraction, metric(p));
    out.push_back(std::move(s));
  }
  return out;
}

inline void print_scale_banner(std::size_t subs, std::size_t events) {
  std::printf("# scale: %zu subscriptions, %zu events%s\n", subs, events,
              env_bool("DBSP_FULL", false)
                  ? " (paper scale)"
                  : " (reduced; DBSP_FULL=1 for 200k/100k)");
}

}  // namespace dbsp::bench
