// Micro-benchmarks of the pruning machinery: candidate enumeration, scoring
// and end-to-end engine throughput per dimension.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "core/engine.hpp"
#include "selectivity/estimator.hpp"
#include "selectivity/stats.hpp"
#include "workload/event_gen.hpp"
#include "workload/subscription_gen.hpp"

namespace {

using namespace dbsp;

struct Fixture {
  WorkloadConfig cfg;
  std::unique_ptr<AuctionDomain> domain;
  std::unique_ptr<EventStats> stats;
  std::unique_ptr<SelectivityEstimator> estimator;

  Fixture() {
    cfg.seed = 7;
    domain = std::make_unique<AuctionDomain>(cfg);
    stats = std::make_unique<EventStats>(domain->schema());
    AuctionEventGenerator training(*domain, 3);
    for (int i = 0; i < 5000; ++i) stats->observe(training.next());
    stats->finalize();
    estimator = std::make_unique<SelectivityEstimator>(*stats);
  }

  [[nodiscard]] std::vector<std::unique_ptr<Subscription>> subs(std::size_t n) const {
    AuctionSubscriptionGenerator gen(*domain, 1);
    std::vector<std::unique_ptr<Subscription>> out;
    for (std::uint32_t i = 0; i < n; ++i) {
      out.push_back(std::make_unique<Subscription>(SubscriptionId(i), gen.next_tree()));
    }
    return out;
  }
};

void BM_EnumerateCandidates(benchmark::State& state) {
  Fixture fx;
  const auto subs = fx.subs(512);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& sub = *subs[i++ % subs.size()];
    benchmark::DoNotOptimize(enumerate_prunings(sub.root()));
  }
}
BENCHMARK(BM_EnumerateCandidates);

void BM_ScoreCandidate(benchmark::State& state) {
  Fixture fx;
  const auto subs = fx.subs(512);
  const HeuristicScorer scorer(*fx.estimator);
  struct Prepared {
    const Subscription* sub;
    Node::Path path;
    OriginalProfile orig;
  };
  std::vector<Prepared> prepared;
  for (const auto& s : subs) {
    const auto paths = enumerate_prunings(s->root());
    if (paths.empty()) continue;
    prepared.push_back({s.get(), paths.front(), scorer.profile(s->root())});
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& p = prepared[i++ % prepared.size()];
    benchmark::DoNotOptimize(scorer.score(p.sub->root(), p.path, p.orig));
  }
}
BENCHMARK(BM_ScoreCandidate);

void BM_EngineFullSweep(benchmark::State& state) {
  Fixture fx;
  const auto dim = static_cast<PruneDimension>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto subs = fx.subs(2000);
    PruneEngineConfig cfg;
    cfg.dimension = dim;
    PruningEngine engine(*fx.estimator, cfg);
    state.ResumeTiming();
    for (auto& s : subs) engine.register_subscription(*s);
    benchmark::DoNotOptimize(engine.prune(engine.total_possible()));
    state.PauseTiming();
    subs.clear();
    state.ResumeTiming();
  }
  state.SetLabel(to_string(dim));
}
BENCHMARK(BM_EngineFullSweep)
    ->Arg(static_cast<int>(PruneDimension::NetworkLoad))
    ->Arg(static_cast<int>(PruneDimension::MemoryUsage))
    ->Arg(static_cast<int>(PruneDimension::Throughput))
    ->Unit(benchmark::kMillisecond);

void BM_SimulatePruning(benchmark::State& state) {
  Fixture fx;
  const auto subs = fx.subs(512);
  struct Target {
    const Subscription* sub;
    Node::Path path;
  };
  std::vector<Target> targets;
  for (const auto& s : subs) {
    for (const auto& p : enumerate_prunings(s->root())) targets.push_back({s.get(), p});
  }
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& t = targets[i++ % targets.size()];
    benchmark::DoNotOptimize(simulate_pruning(t.sub->root(), t.path));
  }
}
BENCHMARK(BM_SimulatePruning);

}  // namespace

BENCHMARK_MAIN();
