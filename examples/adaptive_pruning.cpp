// Adaptive dimension selection — the paper's §1/§5 outlook ("we are also
// able to dynamically adjust our optimization based on current system
// parameters") implemented as a small controller over the public API:
// watch memory pressure and wire pressure, and drive pruning with
// whichever dimension relieves the binding constraint, re-deciding every
// round through PubSub::set_prune_dimension().
//
// The controller is intentionally simple (threshold rules); the point is
// that switching dimensions mid-stream just rebuilds the pruning queues
// from the subscriptions' current (already pruned) state.

#include <cstdio>
#include <vector>

#include "dbsp/dbsp.hpp"

namespace {

using namespace dbsp;

/// Picks the dimension for the next pruning round from observed pressure:
/// association count over budget -> memory; forwarded-event rate over
/// budget -> network; otherwise throughput.
PruneDimension decide(std::size_t associations, std::size_t assoc_budget,
                      double match_rate, double match_budget) {
  if (associations > assoc_budget) return PruneDimension::MemoryUsage;
  if (match_rate > match_budget) return PruneDimension::NetworkLoad;
  return PruneDimension::Throughput;
}

}  // namespace

int main() {
  const auto n_subs = static_cast<std::size_t>(env_int("DBSP_SUBS", 1500));
  const auto domain = make_auction_workload();

  PubSubOptions options;
  options.pruning = true;
  PubSub pubsub(domain->schema(), options);

  {
    std::vector<Event> training;
    auto gen = domain->events(3);
    for (int i = 0; i < 8000; ++i) training.push_back(gen->next());
    pubsub.train(training).expect_ok();
  }

  auto sub_gen = domain->subscriptions(1);
  std::vector<SubscriptionHandle> handles;
  handles.reserve(n_subs);
  for (std::size_t i = 0; i < n_subs; ++i) {
    handles.push_back(pubsub.subscribe(sub_gen->next()).value());
  }

  const std::size_t assoc_budget = pubsub.association_count() * 3 / 4;
  const double match_budget = 0.02;  // forwarded fraction ceiling
  auto event_gen = domain->events(2);

  std::printf("adaptive pruning: %zu subs, association budget %zu, match budget %.3f\n\n",
              n_subs, assoc_budget, match_budget);
  std::printf("%-6s %-12s %12s %12s %12s\n", "round", "dimension", "prunings",
              "assoc.", "match rate");

  for (int round = 0; round < 6; ++round) {
    // Observe one traffic window.
    pubsub.reset_counters();
    const auto window = event_gen->generate(300);
    (void)pubsub.publish_batch(window);
    const double match_rate =
        static_cast<double>(pubsub.counters().matches) /
        (static_cast<double>(window.size()) * static_cast<double>(n_subs));

    const PruneDimension dim =
        decide(pubsub.association_count(), assoc_budget, match_rate, match_budget);

    // Rebuilding the queues on the chosen dimension re-reads the current
    // (already pruned) trees; Δ≈sel/Δ≈eff baselines reset to the current
    // state, which makes the controller conservative — exactly what
    // incremental re-optimization wants.
    pubsub.set_prune_dimension(dim).expect_ok();
    const std::size_t before = pubsub.pruning_stats().performed;
    const std::size_t step = pubsub.pruning_stats().total_possible / 12 + 1;
    (void)pubsub.prune(step).value();

    std::printf("%-6d %-12s %12zu %12zu %12.5f\n", round, to_string(dim),
                pubsub.pruning_stats().performed - before,
                pubsub.association_count(), match_rate);
  }
  std::printf("\ndimension switches follow whichever budget is currently violated.\n");
  return 0;
}
