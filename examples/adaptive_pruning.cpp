// Adaptive dimension selection — the paper's §1/§5 outlook ("we are also
// able to dynamically adjust our optimization based on current system
// parameters") implemented as a small controller: watch memory pressure and
// wire pressure, and drive pruning with whichever dimension relieves the
// binding constraint, re-deciding every round.
//
// The controller is intentionally simple (threshold rules); the point is
// that the engine supports switching dimensions mid-stream because every
// queue entry is re-derived from the subscription's current state.

#include <cstdio>
#include <memory>
#include <vector>

#include "common/env.hpp"
#include "core/engine.hpp"
#include "filter/counting_matcher.hpp"
#include "selectivity/estimator.hpp"
#include "selectivity/stats.hpp"
#include "workload/event_gen.hpp"
#include "workload/subscription_gen.hpp"

namespace {

using namespace dbsp;

/// Picks the dimension for the next pruning round from observed pressure:
/// association count over budget -> memory; forwarded-event rate over
/// budget -> network; otherwise throughput.
PruneDimension decide(std::size_t associations, std::size_t assoc_budget,
                      double match_rate, double match_budget) {
  if (associations > assoc_budget) return PruneDimension::MemoryUsage;
  if (match_rate > match_budget) return PruneDimension::NetworkLoad;
  return PruneDimension::Throughput;
}

}  // namespace

int main() {
  const auto n_subs = static_cast<std::size_t>(env_int("DBSP_SUBS", 1500));
  const WorkloadConfig wl;
  const AuctionDomain domain(wl);

  EventStats stats(domain.schema());
  AuctionEventGenerator training(domain, 3);
  for (int i = 0; i < 8000; ++i) stats.observe(training.next());
  stats.finalize();
  const SelectivityEstimator estimator(stats);

  AuctionSubscriptionGenerator sub_gen(domain, 1);
  std::vector<std::unique_ptr<Subscription>> subs;
  CountingMatcher matcher(domain.schema());
  for (std::uint32_t i = 0; i < n_subs; ++i) {
    subs.push_back(std::make_unique<Subscription>(SubscriptionId(i), sub_gen.next_tree()));
    matcher.add(*subs.back());
  }

  const std::size_t assoc_budget = matcher.association_count() * 3 / 4;
  const double match_budget = 0.02;  // forwarded fraction ceiling
  AuctionEventGenerator event_gen(domain, 2);

  std::printf("adaptive pruning: %zu subs, association budget %zu, match budget %.3f\n\n",
              n_subs, assoc_budget, match_budget);
  std::printf("%-6s %-12s %12s %12s %12s\n", "round", "dimension", "prunings",
              "assoc.", "match rate");

  for (int round = 0; round < 6; ++round) {
    // Observe one traffic window.
    matcher.reset_counters();
    std::vector<SubscriptionId> matches;
    const auto window = event_gen.generate(300);
    for (const auto& e : window) {
      matches.clear();
      matcher.match(e, matches);
    }
    const double match_rate =
        static_cast<double>(matcher.counters().matches) /
        (static_cast<double>(window.size()) * static_cast<double>(n_subs));

    const PruneDimension dim =
        decide(matcher.association_count(), assoc_budget, match_rate, match_budget);

    // A fresh engine per round re-reads the current (already pruned) trees;
    // Δ≈sel/Δ≈eff baselines reset to the current state, which makes the
    // controller conservative — exactly what incremental re-optimization
    // wants.
    PruneEngineConfig config;
    config.dimension = dim;
    PruningEngine engine(estimator, config, &matcher);
    for (auto& s : subs) engine.register_subscription(*s);
    const std::size_t step = engine.total_possible() / 12 + 1;
    engine.prune(step);

    std::printf("%-6d %-12s %12zu %12zu %12.5f\n", round, to_string(dim),
                engine.performed(), matcher.association_count(), match_rate);
  }
  std::printf("\ndimension switches follow whichever budget is currently violated.\n");
  return 0;
}
