// Distributed routing walkthrough: the paper's 5-broker line. Floods
// subscriptions through the overlay, publishes auction events at every
// broker, then enables broker-owned pruning of each broker's remote
// routing entries on the network dimension and shows that (1) subscribers
// still receive exactly the same notifications, (2) routing state shrank,
// (3) only transit traffic grew.
//
// Knobs: DBSP_SUBS (default 1000), DBSP_EVENTS (default 400).

#include <cstdio>

#include "dbsp/dbsp.hpp"

int main() {
  using namespace dbsp;
  const auto n_subs = static_cast<std::size_t>(env_int("DBSP_SUBS", 1000));
  const auto n_events = static_cast<std::size_t>(env_int("DBSP_EVENTS", 400));
  constexpr std::size_t kBrokers = 5;

  const auto domain = make_auction_workload();

  // Selectivity statistics first: brokers with pruning enabled reference
  // the estimator, so it must outlive the overlay.
  EventStats stats(domain->schema());
  {
    auto training = domain->events(3);
    for (int i = 0; i < 8000; ++i) stats.observe(training->next());
  }
  stats.finalize();
  const SelectivityEstimator estimator(stats);

  Overlay overlay(domain->schema(), kBrokers, Overlay::line(kBrokers));

  auto sub_gen = domain->subscriptions(1);
  for (std::uint32_t i = 0; i < n_subs; ++i) {
    overlay.subscribe(BrokerId(i % kBrokers), ClientId(i), SubscriptionId(i),
                      sub_gen->next());
  }
  std::printf("overlay: %zu brokers in a line, %zu subscriptions flooded (%llu control msgs)\n",
              kBrokers, n_subs,
              static_cast<unsigned long long>(overlay.network().total().control_messages));

  const auto events = domain->events(2)->generate(n_events);

  auto publish_all = [&] {
    overlay.reset_metrics();
    for (std::size_t i = 0; i < events.size(); ++i) {
      overlay.publish(BrokerId(static_cast<BrokerId::value_type>(i % kBrokers)),
                      events[i]);
    }
  };

  publish_all();
  const auto base_notifications = overlay.total_notifications();
  const auto base_messages = overlay.network().total().event_messages;
  const auto base_assocs = overlay.total_remote_associations();
  std::printf("\nunoptimized: %llu notifications, %llu event messages, %zu remote assoc.\n",
              static_cast<unsigned long long>(base_notifications),
              static_cast<unsigned long long>(base_messages), base_assocs);

  // Prune 60% of each broker's remote entries on the network dimension.
  // Each broker's filter table is sharded (DBSP_SHARDS, default = hardware
  // concurrency), so the pruning queue runs per shard. The broker owns the
  // set and keeps it in sync were any churn to follow.
  std::printf("each broker matches over %zu shard(s)\n",
              overlay.broker(BrokerId(0)).engine().shard_count());
  PruneEngineConfig config;
  config.dimension = PruneDimension::NetworkLoad;
  for (std::size_t b = 0; b < kBrokers; ++b) {
    overlay.broker(BrokerId(static_cast<BrokerId::value_type>(b)))
        .enable_pruning(estimator, config)
        .prune_to_fraction(0.6);
  }

  publish_all();
  std::printf("pruned 60%%:  %llu notifications, %llu event messages, %zu remote assoc.\n",
              static_cast<unsigned long long>(overlay.total_notifications()),
              static_cast<unsigned long long>(overlay.network().total().event_messages),
              overlay.total_remote_associations());

  if (overlay.total_notifications() != base_notifications) {
    std::printf("ERROR: notification set changed — routing correctness violated!\n");
    return 1;
  }
  std::printf("\nnotifications identical; memory -%0.f%%, network +%.0f%% — the pruning trade-off.\n",
              100.0 * (1.0 - static_cast<double>(overlay.total_remote_associations()) /
                                 static_cast<double>(base_assocs)),
              100.0 * (static_cast<double>(overlay.network().total().event_messages) /
                           static_cast<double>(base_messages) -
                       1.0));
  return 0;
}
