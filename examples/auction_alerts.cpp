// Auction alerts: the paper's application scenario on a single broker.
// Generates the online book-auction workload (three subscriber classes),
// filters a stream of listing events, and shows how the three pruning
// dimensions trade network load, memory and throughput against each other
// at a fixed pruning budget.
//
// Knobs: DBSP_SUBS (default 2000), DBSP_EVENTS (default 1000).

#include <cstdio>
#include <memory>
#include <vector>

#include "common/env.hpp"
#include "common/timer.hpp"
#include "core/engine.hpp"
#include "filter/counting_matcher.hpp"
#include "selectivity/estimator.hpp"
#include "selectivity/stats.hpp"
#include "workload/event_gen.hpp"
#include "workload/subscription_gen.hpp"

int main() {
  using namespace dbsp;
  const auto n_subs = static_cast<std::size_t>(env_int("DBSP_SUBS", 2000));
  const auto n_events = static_cast<std::size_t>(env_int("DBSP_EVENTS", 1000));

  const WorkloadConfig wl;
  const AuctionDomain domain(wl);

  // Train selectivity statistics on a sample of historical listings.
  EventStats stats(domain.schema());
  AuctionEventGenerator training(domain, 3);
  for (int i = 0; i < 10000; ++i) stats.observe(training.next());
  stats.finalize();
  const SelectivityEstimator estimator(stats);

  AuctionEventGenerator event_gen(domain, 2);
  const auto events = event_gen.generate(n_events);

  std::printf("auction_alerts: %zu subscriptions, %zu events, pruning budget 40%%\n\n",
              n_subs, n_events);
  std::printf("%-12s %12s %14s %14s %12s\n", "dimension", "prunings",
              "assoc. left", "matches", "ms/event");

  for (const PruneDimension dim :
       {PruneDimension::NetworkLoad, PruneDimension::MemoryUsage,
        PruneDimension::Throughput}) {
    // Fresh broker state per dimension — identical workload via the seed.
    AuctionSubscriptionGenerator sub_gen(domain, 1);
    std::vector<std::unique_ptr<Subscription>> subs;
    CountingMatcher matcher(domain.schema());
    for (std::uint32_t i = 0; i < n_subs; ++i) {
      subs.push_back(std::make_unique<Subscription>(SubscriptionId(i),
                                                    sub_gen.next_tree()));
      matcher.add(*subs.back());
    }

    PruneEngineConfig config;
    config.dimension = dim;
    PruningEngine engine(estimator, config, &matcher);
    for (auto& s : subs) engine.register_subscription(*s);
    engine.prune(engine.total_possible() * 2 / 5);  // 40% of all prunings

    matcher.reset_counters();
    std::vector<SubscriptionId> matches;
    Stopwatch watch;
    watch.start();
    for (const auto& e : events) {
      matches.clear();
      matcher.match(e, matches);
    }
    watch.stop();

    std::printf("%-12s %12zu %14zu %14llu %12.3f\n", to_string(dim),
                engine.performed(), matcher.association_count(),
                static_cast<unsigned long long>(matcher.counters().matches),
                1e3 * watch.seconds() / static_cast<double>(n_events));
  }
  std::printf("\nSee bench/fig1* for the full sweeps of Figure 1.\n");
  return 0;
}
