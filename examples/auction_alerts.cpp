// Auction alerts: the paper's application scenario on a single broker,
// driven entirely through the public PubSub facade. Generates the online
// book-auction workload, filters a stream of listing events, and shows how
// the three pruning dimensions trade network load, memory and throughput
// against each other at a fixed pruning budget.
//
// Knobs: DBSP_SUBS (default 2000), DBSP_EVENTS (default 1000).

#include <cstdio>
#include <vector>

#include "dbsp/dbsp.hpp"

int main() {
  using namespace dbsp;
  const auto n_subs = static_cast<std::size_t>(env_int("DBSP_SUBS", 2000));
  const auto n_events = static_cast<std::size_t>(env_int("DBSP_EVENTS", 1000));

  const auto domain = make_auction_workload();

  // Historical listings: one sample trains the selectivity statistics,
  // an independent stream is the measured traffic.
  std::vector<Event> training;
  {
    auto gen = domain->events(3);
    for (int i = 0; i < 10000; ++i) training.push_back(gen->next());
  }
  const auto events = domain->events(2)->generate(n_events);

  std::printf("auction_alerts: %zu subscriptions, %zu events, pruning budget 40%%\n\n",
              n_subs, n_events);
  std::printf("%-12s %12s %14s %14s %12s\n", "dimension", "prunings",
              "assoc. left", "matches", "ms/event");

  for (const PruneDimension dim :
       {PruneDimension::NetworkLoad, PruneDimension::MemoryUsage,
        PruneDimension::Throughput}) {
    // Fresh broker state per dimension — identical workload via the seed.
    PubSubOptions options;
    options.pruning = true;
    options.prune.dimension = dim;
    PubSub pubsub(domain->schema(), options);
    pubsub.train(training).expect_ok();

    auto sub_gen = domain->subscriptions(1);
    std::vector<SubscriptionHandle> handles;
    handles.reserve(n_subs);
    for (std::size_t i = 0; i < n_subs; ++i) {
      handles.push_back(pubsub.subscribe(sub_gen->next()).value());
    }

    const std::size_t budget = pubsub.pruning_stats().total_possible * 2 / 5;
    (void)pubsub.prune(budget).value();  // 40% of all prunings

    pubsub.reset_counters();
    Stopwatch watch;
    watch.start();
    (void)pubsub.publish_batch(events);
    watch.stop();

    std::printf("%-12s %12zu %14zu %14llu %12.3f\n", to_string(dim),
                pubsub.pruning_stats().performed, pubsub.association_count(),
                static_cast<unsigned long long>(pubsub.counters().matches),
                1e3 * watch.seconds() / static_cast<double>(n_events));
  }
  std::printf("\nSee bench/fig1* for the full sweeps of Figure 1.\n");
  return 0;
}
