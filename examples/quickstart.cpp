// Quickstart: declare a schema, register Boolean subscriptions through the
// textual DSL, match events with the counting filter engine, then watch
// dimension-based pruning generalize a routing entry step by step.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <iostream>
#include <memory>
#include <vector>

#include "core/engine.hpp"
#include "event/event.hpp"
#include "filter/counting_matcher.hpp"
#include "selectivity/estimator.hpp"
#include "subscription/parser.hpp"

int main() {
  using namespace dbsp;

  // 1. A schema: the attributes events may carry.
  Schema schema;
  schema.add_attribute("category", ValueType::String);
  schema.add_attribute("price", ValueType::Double);
  schema.add_attribute("condition", ValueType::String);
  schema.add_attribute("seller_rating", ValueType::Double);

  // 2. Subscriptions are arbitrary Boolean filter expressions.
  const char* texts[] = {
      "category = 'science_fiction' and price < 15",
      "category in ('mystery', 'thriller') and condition = 'new' and price < 30",
      "(category = 'art' or category = 'photography') and seller_rating >= 95",
  };
  std::vector<std::unique_ptr<Subscription>> subs;
  CountingMatcher matcher(schema);
  for (std::uint32_t i = 0; i < 3; ++i) {
    subs.push_back(std::make_unique<Subscription>(
        SubscriptionId(i), parse_subscription(texts[i], schema)));
    matcher.add(*subs.back());
  }

  // 3. Match an event against all subscriptions at once.
  const Event listing = EventBuilder(schema)
                            .with("category", "mystery")
                            .with("price", 12.5)
                            .with("condition", "new")
                            .with("seller_rating", 88.0)
                            .build();
  std::vector<SubscriptionId> matches;
  matcher.match(listing, matches);
  std::cout << "event " << listing.to_string(schema) << "\nmatches:";
  for (const auto id : matches) std::cout << " #" << id.value();
  std::cout << "\n\n";

  // 4. Dimension-based pruning: generalize subscriptions to save routing
  //    state. Here we prune twice on the memory dimension.
  const SelectivityEstimator estimator(
      LeafSelectivityFn([](const Predicate&) { return 0.1; }));
  PruneEngineConfig config;
  config.dimension = PruneDimension::MemoryUsage;
  PruningEngine engine(estimator, config, &matcher);
  for (auto& s : subs) engine.register_subscription(*s);

  std::cout << "total possible prunings: " << engine.total_possible() << "\n";
  std::cout << "associations before: " << matcher.association_count() << "\n";
  for (int step = 0; step < 2 && engine.prune_one(); ++step) {
    const auto& applied = engine.history().back();
    std::cout << "pruned subscription #" << applied.sub.value()
              << " (saved " << applied.scores.mem_improvement << " bytes)\n";
    std::cout << "  now: "
              << subs[applied.sub.value()]->to_string(schema) << "\n";
  }
  std::cout << "associations after: " << matcher.association_count() << "\n";
  return 0;
}
