// Quickstart on the public API: build a PubSub, register Boolean
// subscriptions through the fluent filter builder and the textual DSL,
// publish events to RAII subscription handles, then watch dimension-based
// pruning generalize a filter step by step.
//
// Build & run:  cmake --build build && ./build/examples/quickstart

#include <iostream>
#include <vector>

#include "dbsp/dbsp.hpp"

int main() {
  using namespace dbsp;

  // 1. A schema: the attributes events may carry. The PubSub facade owns
  //    it (and the sharded matching engine, and the pruning queues).
  Schema schema;
  schema.add_attribute("category", ValueType::String);
  schema.add_attribute("price", ValueType::Double);
  schema.add_attribute("condition", ValueType::String);
  schema.add_attribute("seller_rating", ValueType::Double);

  PubSubOptions options;
  options.pruning = true;  // enable the pruning queues for step 4
  options.prune.dimension = PruneDimension::MemoryUsage;
  PubSub pubsub(std::move(schema), options);

  // 2. Subscriptions are arbitrary Boolean filters: compose them with the
  //    fluent builder or parse DSL text — both compile to the same trees.
  const auto on_match = [](const Notification& n) {
    std::cout << "  -> subscription #" << n.subscription.value() << " matched\n";
  };

  const Filter fiction =
      where("category").eq("science_fiction") && where("price").lt(15);
  const Filter art = (where("category").eq("art") ||
                      where("category").eq("photography")) &&
                     where("seller_rating").ge(95);

  std::vector<SubscriptionHandle> handles;
  handles.push_back(pubsub.subscribe(fiction, on_match).value());
  handles.push_back(
      pubsub
          .subscribe("category in ('mystery', 'thriller') and "
                     "condition = 'new' and price < 30",
                     on_match)
          .value());
  handles.push_back(pubsub.subscribe(art, on_match).value());

  // Compile-time names, runtime checking: errors come back as Status, not
  // exceptions.
  const auto bad = pubsub.subscribe(where("colour").eq("red"));
  std::cout << "subscribing on an unknown attribute: "
            << bad.status().to_string() << "\n\n";

  // 3. Publish an event; callbacks fire per matching subscription.
  const Event listing = pubsub.event()
                            .with("category", "mystery")
                            .with("price", 12.5)
                            .with("condition", "new")
                            .with("seller_rating", 88.0)
                            .build();
  std::cout << "publishing " << listing.to_string(pubsub.schema()) << "\n";
  const std::size_t delivered = pubsub.publish(listing);
  std::cout << delivered << " notification(s) delivered\n\n";

  // 4. Dimension-based pruning: generalize subscriptions to save routing
  //    state. Train the selectivity statistics on a small sample, then
  //    prune twice on the memory dimension.
  std::vector<Event> sample;
  for (int i = 0; i < 64; ++i) {
    sample.push_back(pubsub.event()
                         .with("category", i % 4 == 0 ? "mystery" : "art")
                         .with("price", 5.0 + static_cast<double>(i))
                         .with("condition", i % 2 == 0 ? "new" : "used")
                         .with("seller_rating", 50.0 + static_cast<double>(i))
                         .build());
  }
  pubsub.train(sample).expect_ok();
  pubsub.rescore_all().expect_ok();

  std::cout << "total possible prunings: " << pubsub.pruning_stats().total_possible
            << "\n";
  std::cout << "associations before: " << pubsub.association_count() << "\n";
  (void)pubsub.prune(2).value();
  for (const auto& handle : handles) {
    std::cout << "  #" << handle.id().value() << ": "
              << pubsub.subscription_text(handle.id()).value() << "\n";
  }
  std::cout << "associations after: " << pubsub.association_count() << "\n\n";

  // 5. Handles are RAII claims: dropping one unsubscribes and releases its
  //    pruning state automatically.
  handles.pop_back();
  std::cout << "after dropping one handle: " << pubsub.subscription_count()
            << " subscriptions, " << pubsub.pruning_stats().tracked
            << " tracked by pruning\n";
  return 0;
}
