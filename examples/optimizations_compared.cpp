// Covering, merging and pruning side by side — the paper's §2.3 argument
// as a runnable demo. Covering and perfect merging only help when
// subscriptions are conjunctive and structurally related; dimension-based
// pruning (run here through the PubSub facade) optimizes *every*
// subscription independently of its shape.

#include <cstdio>
#include <memory>
#include <vector>

#include "dbsp/dbsp.hpp"

int main() {
  using namespace dbsp;
  const auto n_subs = static_cast<std::size_t>(env_int("DBSP_SUBS", 1500));

  const auto domain = make_auction_workload();
  auto gen = domain->subscriptions(1);
  std::vector<std::unique_ptr<Node>> trees;
  for (std::size_t i = 0; i < n_subs; ++i) trees.push_back(gen->next());

  // --- Covering: how many routing entries are redundant? -------------------
  std::size_t conjunctive = 0;
  std::size_t covered = 0;
  for (std::size_t i = 0; i < trees.size(); ++i) {
    if (!is_conjunctive(*trees[i])) continue;
    ++conjunctive;
    for (std::size_t j = 0; j < trees.size(); ++j) {
      if (i == j) continue;
      if (covers(*trees[j], *trees[i]) == std::optional<bool>(true)) {
        ++covered;
        break;
      }
    }
  }
  std::printf("workload: %zu subscriptions, %zu conjunctive (%.0f%%)\n", n_subs,
              conjunctive, 100.0 * static_cast<double>(conjunctive) /
                               static_cast<double>(n_subs));
  std::printf("covering:  %zu entries covered by another subscription\n", covered);

  // --- Perfect merging over the conjunctive subset --------------------------
  std::vector<const Node*> conjunctive_trees;
  for (const auto& t : trees) {
    if (is_conjunctive(*t)) conjunctive_trees.push_back(t.get());
  }
  const auto merged = merge_all(conjunctive_trees);
  std::printf("merging:   %zu conjunctive entries -> %zu after perfect merging\n",
              conjunctive_trees.size(), merged.size());

  // --- Pruning: applies to all of them --------------------------------------
  PubSubOptions options;
  options.pruning = true;
  options.prune.dimension = PruneDimension::MemoryUsage;
  PubSub pubsub(domain->schema(), options);
  {
    std::vector<Event> training;
    auto event_gen = domain->events(3);
    for (int i = 0; i < 8000; ++i) training.push_back(event_gen->next());
    pubsub.train(training).expect_ok();
  }

  std::vector<SubscriptionHandle> handles;
  handles.reserve(trees.size());
  for (const auto& t : trees) {
    handles.push_back(pubsub.subscribe(t->clone()).value());
  }

  const std::size_t bytes_before = pubsub.subscription_bytes();
  (void)pubsub.prune(pubsub.pruning_stats().total_possible / 2).value();
  const std::size_t bytes_after = pubsub.subscription_bytes();

  std::printf("pruning:   50%% of prunings shrink routing state %zu -> %zu bytes "
              "(-%.0f%%), across ALL %zu subscriptions\n",
              bytes_before, bytes_after,
              100.0 * (1.0 - static_cast<double>(bytes_after) /
                                 static_cast<double>(bytes_before)),
              n_subs);
  std::printf("\ncovering/merging need conjunctive, related subscriptions;\n"
              "pruning optimizes each Boolean subscription independently.\n");
  return 0;
}
