// Covering, merging and pruning side by side — the paper's §2.3 argument
// as a runnable demo. Covering and perfect merging only help when
// subscriptions are conjunctive and structurally related; dimension-based
// pruning optimizes *every* subscription independently of its shape.

#include <cstdio>
#include <memory>
#include <vector>

#include "common/env.hpp"
#include "core/engine.hpp"
#include "routing/covering.hpp"
#include "routing/merging.hpp"
#include "selectivity/estimator.hpp"
#include "selectivity/stats.hpp"
#include "workload/event_gen.hpp"
#include "workload/subscription_gen.hpp"

int main() {
  using namespace dbsp;
  const auto n_subs = static_cast<std::size_t>(env_int("DBSP_SUBS", 1500));

  const WorkloadConfig wl;
  const AuctionDomain domain(wl);
  AuctionSubscriptionGenerator gen(domain, 1);
  std::vector<std::unique_ptr<Node>> trees;
  for (std::size_t i = 0; i < n_subs; ++i) trees.push_back(gen.next_tree());

  // --- Covering: how many routing entries are redundant? -------------------
  std::size_t conjunctive = 0;
  std::size_t covered = 0;
  for (std::size_t i = 0; i < trees.size(); ++i) {
    if (!is_conjunctive(*trees[i])) continue;
    ++conjunctive;
    for (std::size_t j = 0; j < trees.size(); ++j) {
      if (i == j) continue;
      if (covers(*trees[j], *trees[i]) == std::optional<bool>(true)) {
        ++covered;
        break;
      }
    }
  }
  std::printf("workload: %zu subscriptions, %zu conjunctive (%.0f%%)\n", n_subs,
              conjunctive, 100.0 * static_cast<double>(conjunctive) /
                               static_cast<double>(n_subs));
  std::printf("covering:  %zu entries covered by another subscription\n", covered);

  // --- Perfect merging over the conjunctive subset --------------------------
  std::vector<const Node*> conjunctive_trees;
  for (const auto& t : trees) {
    if (is_conjunctive(*t)) conjunctive_trees.push_back(t.get());
  }
  const auto merged = merge_all(conjunctive_trees);
  std::printf("merging:   %zu conjunctive entries -> %zu after perfect merging\n",
              conjunctive_trees.size(), merged.size());

  // --- Pruning: applies to all of them --------------------------------------
  EventStats stats(domain.schema());
  AuctionEventGenerator training(domain, 3);
  for (int i = 0; i < 8000; ++i) stats.observe(training.next());
  stats.finalize();
  const SelectivityEstimator estimator(stats);

  std::vector<std::unique_ptr<Subscription>> subs;
  for (std::size_t i = 0; i < trees.size(); ++i) {
    subs.push_back(std::make_unique<Subscription>(
        SubscriptionId(static_cast<SubscriptionId::value_type>(i)),
        trees[i]->clone()));
  }
  PruneEngineConfig config;
  config.dimension = PruneDimension::MemoryUsage;
  PruningEngine engine(estimator, config);
  for (auto& s : subs) engine.register_subscription(*s);

  std::size_t bytes_before = 0;
  for (const auto& s : subs) bytes_before += s->root().size_bytes();
  engine.prune(engine.total_possible() / 2);
  std::size_t bytes_after = 0;
  for (const auto& s : subs) bytes_after += s->root().size_bytes();

  std::printf("pruning:   50%% of prunings shrink routing state %zu -> %zu bytes "
              "(-%.0f%%), across ALL %zu subscriptions\n",
              bytes_before, bytes_after,
              100.0 * (1.0 - static_cast<double>(bytes_after) /
                                 static_cast<double>(bytes_before)),
              n_subs);
  std::printf("\ncovering/merging need conjunctive, related subscriptions;\n"
              "pruning optimizes each Boolean subscription independently.\n");
  return 0;
}
